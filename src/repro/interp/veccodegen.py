"""Vector kernel tier: whole-loop NumPy codegen for proved-DOALL loops.

The scalar block-template JIT (:mod:`repro.interp.codegen`) still pays
per-iteration dispatch for loops the static dependence engine has already
proved ``STATIC_DOALL``. This module cashes in that proof as a different
code shape: for an innermost loop with a SCEV-computable constant trip
count, affine induction variables, and affine memory accesses over
disambiguated base objects, the emitter plants a *vector section* on the
preheader's branch into the header. The section evaluates the whole loop
at once — induction variables become ``np.arange``-derived index vectors,
loads become strided gathers over the flat :class:`AddressSpace` slot
list, the straight-line body becomes elementwise NumPy expressions, and
stores become strided scatters — then jumps straight to the exit block.

The design constraints, in order of importance:

1. **Byte-identical observables.** Results, traps, fuel accounting, and
   the full instrumented profile must match the scalar tiers exactly.
   Loop-invocation and memory events are computed in *closed form* from
   the trip count and access functions and delivered in bulk through
   :meth:`ProfilingRuntime.vec_loop`. Anything the kernel cannot
   reproduce exactly (division by zero mid-vector, an out-of-bounds
   address, a gather over non-scalar slots, int64 headroom exhausted)
   raises :class:`_VBail` *before any state is mutated* and control falls
   through to the unmodified scalar path, which then replays the loop —
   including its trap or fuel exhaustion — with identical timestamps.

2. **Explicit bailouts.** Every reason a loop is not vectorized is one of
   the ``BAIL_*`` constants below, surfaced per loop via
   :func:`plan_vector_loops` / :func:`vector_decisions` so a run manifest
   can report exactly which parallelism was unlocked and which was left
   on the table (and why).

3. **No new dependences.** NumPy is optional at runtime: without it
   (``_np is None``) every loop reports ``numpy-unavailable`` and the
   scalar JIT carries on alone. ``jit_entry`` additionally keys cached
   sources with a tier tag so vector and scalar sources never mix.

Soundness of the reordering (gather everything, compute, scatter
everything) rests on the DOALL verdict: cross-iteration RAW/WAR/WAW on
may-alias pairs all imply a loop-carried dependence, which the verdict
excludes, and intra-iteration store/load overlaps are rejected by
:func:`_intra_alias`. Runtime address checks (stride progression and
bounds against the live stack pointer) re-verify at execution time what
the affine model promised statically.
"""

from __future__ import annotations

import math as _math
import os as _os

from ..analysis.depend import (
    DependenceAnalysis,
    VERDICT_DOALL,
    module_memory_summaries,
)
from ..analysis.loop_info import LoopInfo
from ..analysis.purity import _trace_to_base
from ..analysis.scev import SCEVAddRec, SCEVConstant, ScalarEvolution
from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Instruction,
    Load,
    Phi,
    Select,
    Store,
)
from ..ir.values import Argument, ConstantFloat, ConstantInt, GlobalVariable
from .interpreter import signed_div, signed_rem, unsigned_div, unsigned_rem
from .intrinsics import _hash32

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

#: Bump whenever the vector-section template changes; folded into the
#: code-cache key (tier tag) so stale vector sources are never reused.
VEC_VERSION = 3

#: Largest trip count executed as one kernel. Beyond this the transient
#: arrays stop paying for themselves and a buggy bound would allocate
#: gigabytes; the scalar tier handles the rest.
_MAX_VEC_TRIP = 1 << 21

# -- bailout taxonomy (every non-vectorized loop reports exactly one) ---------

BAIL_NUMPY = "numpy-unavailable"
BAIL_INNER = "contains-inner-loop"
BAIL_MULTI_LATCH = "multiple-latches"
BAIL_NOT_SIMPLIFIED = "not-simplified"
BAIL_HEADER = "complex-header"
BAIL_CFG = "control-flow-in-body"
BAIL_CALL = "contains-call"
BAIL_OP = "unsupported-op"
BAIL_INSTR = "irregular-instrumentation"
BAIL_HOOKS = "lcd-hooks-in-loop"
BAIL_TRIP = "no-constant-trip-count"
BAIL_TRIP_WRAP = "i32-wrap-unprovable-bounds"
BAIL_TRIP_SIZE = "oversized-trip"
BAIL_IV = "non-affine-iv"
BAIL_ACCESS = "non-affine-access"
BAIL_ALIAS = "intra-iteration-alias"
BAIL_VERDICT = "not-proved-doall"

ALL_BAILOUTS = (
    BAIL_NUMPY, BAIL_INNER, BAIL_MULTI_LATCH, BAIL_NOT_SIMPLIFIED,
    BAIL_HEADER, BAIL_CFG, BAIL_CALL, BAIL_OP, BAIL_INSTR, BAIL_HOOKS,
    BAIL_TRIP, BAIL_TRIP_WRAP, BAIL_TRIP_SIZE, BAIL_IV, BAIL_ACCESS,
    BAIL_ALIAS, BAIL_VERDICT,
)

_ICMP = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_FCMP = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}

_WRAP_LIMIT = 1 << 31
#: Per-operation int64 headroom: ``_vw`` adds 2**31 before masking, so
#: every intermediate must stay strictly below 2**62 in magnitude.
_MAG_LIMIT = 1 << 62
#: Static magnitude assumed for any runtime address (slot index). The
#: slot space is a real Python list, so this is generous by orders of
#: magnitude; it only has to keep address arithmetic inside int64.
_ADDR_BOUND = 1 << 48


def vec_available():
    """Whether the vector tier can run at all in this process."""
    return _np is not None


class _VBail(Exception):
    """A runtime guard failed before any state was mutated; the caller
    falls through to the scalar path, which replays the loop exactly
    (including any trap or fuel exhaustion the guard anticipated)."""


# -- runtime helpers (injected into generated-code namespaces) ----------------
#
# Every helper is *dual*: it accepts NumPy arrays or plain Python scalars
# and preserves scalarness, so loop-invariant subexpressions stay exact
# Python arithmetic and only IV-dependent values pay for (and rely on)
# int64/float64 semantics.


def _vw(x):
    """Branch-free 32-bit two's-complement wrap, elementwise or scalar."""
    return ((x + 2147483648) & 4294967295) - 2147483648


def _vb(x):
    """Comparison result -> 0/1 int (int64 vector or Python int)."""
    if isinstance(x, _np.ndarray):
        return x.astype(_np.int64)
    return 1 if x else 0


def _vsel(c, t, f):
    """``select``: np.where when anything is vectored, else exact Python
    (preserving object identity of the chosen operand)."""
    if isinstance(c, _np.ndarray) or isinstance(t, _np.ndarray) \
            or isinstance(f, _np.ndarray):
        if isinstance(c, _np.ndarray):
            return _np.where(c != 0, t, f)
        return _np.where(bool(c), t, f)
    return t if c else f


def _vf(x):
    """``sitofp``: exact for canonical i32 (|x| < 2**31 < 2**53)."""
    if isinstance(x, _np.ndarray):
        return x.astype(_np.float64)
    return float(x)


def _vfptosi(x):
    """``fptosi``: truncate toward zero then wrap to i32. Python's int()
    accepts any finite float; bounding |x| < 2**62 keeps the array path
    inside int64 (then the wrap makes both routes identical). Non-finite
    input would raise in the scalar tier, so the kernel bails and lets
    the scalar replay produce that exact error."""
    if isinstance(x, _np.ndarray):
        if not _np.isfinite(x).all() or (_np.abs(x) >= 4611686018427387904.0).any():
            raise _VBail
        return _vw(x.astype(_np.int64))
    if not _math.isfinite(x) or abs(x) >= 4611686018427387904.0:
        raise _VBail
    return _vw(int(x))


def _vtrunc(x, mask, half, span):
    """``trunc`` to a width >= 2: mask then sign-extend, branch-free."""
    x = x & mask
    return x - span * (x >= half)


def _vsdiv(a, b):
    """``sdiv`` at width 32; INT_MIN // -1 wraps back to INT_MIN."""
    if isinstance(b, _np.ndarray):
        if (b == 0).any():
            raise _VBail  # scalar replay raises the trap at the right cost
        if not isinstance(a, _np.ndarray):
            a = _np.int64(a)
        q = (_np.abs(a) // _np.abs(b)) * (_np.sign(a) * _np.sign(b))
        return _vw(q)
    if b == 0:
        raise _VBail
    if isinstance(a, _np.ndarray):
        q = (_np.abs(a) // abs(b)) * (_np.sign(a) * (1 if b > 0 else -1))
        return _vw(q)
    return signed_div(a, b, 32)


def _vsrem(a, b):
    """``srem``: remainder of the truncating division (INT_MIN % -1 == 0);
    the quotient is deliberately unwrapped, mirroring ``signed_rem``."""
    if isinstance(b, _np.ndarray):
        if (b == 0).any():
            raise _VBail
        if not isinstance(a, _np.ndarray):
            a = _np.int64(a)
        q = (_np.abs(a) // _np.abs(b)) * (_np.sign(a) * _np.sign(b))
        return a - q * b
    if b == 0:
        raise _VBail
    if isinstance(a, _np.ndarray):
        q = (_np.abs(a) // abs(b)) * (_np.sign(a) * (1 if b > 0 else -1))
        return a - q * b
    return signed_rem(a, b, 32)


def _vudiv(a, b):
    """``udiv`` over the unsigned views of the 32-bit patterns."""
    if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
        ub = b & 4294967295
        if isinstance(ub, _np.ndarray):
            if (ub == 0).any():
                raise _VBail
        elif ub == 0:
            raise _VBail
        return _vw((a & 4294967295) // ub)
    if b & 4294967295 == 0:
        raise _VBail
    return unsigned_div(a, b, 32)


def _vurem(a, b):
    """``urem`` over the unsigned views of the 32-bit patterns."""
    if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
        ub = b & 4294967295
        if isinstance(ub, _np.ndarray):
            if (ub == 0).any():
                raise _VBail
        elif ub == 0:
            raise _VBail
        return _vw((a & 4294967295) % ub)
    if b & 4294967295 == 0:
        raise _VBail
    return unsigned_rem(a, b, 32)


def _vfdiv(a, b):
    """``fdiv``: any zero divisor means the scalar tier would trap."""
    if isinstance(b, _np.ndarray):
        if (b == 0.0).any():
            raise _VBail
    elif b == 0.0:
        raise _VBail
    return a / b


def _vaddr(space, ptrs, stride, n):
    """Verify an access's address vector at runtime — exact stride
    progression and full in-bounds range — and return the base address.
    This re-checks dynamically what the affine model promised statically,
    so even a planner bug degrades to a bailout, never a wrong access."""
    if isinstance(ptrs, _np.ndarray):
        base = int(ptrs[0])
        if n > 1 and not (ptrs[1:] - ptrs[:-1] == stride).all():
            raise _VBail
    else:
        if stride != 0 and n > 1:
            raise _VBail
        base = ptrs
    last = base + stride * (n - 1)
    lo, hi = (base, last) if stride >= 0 else (last, base)
    if lo < 0 or hi >= space._stack_pointer:
        raise _VBail  # scalar replay raises the trap at the faulting access
    return base


#: Store pre-check: identical to the load-side verifier; kept as its own
#: name so generated sources read as check/commit pairs.
_vpre = _vaddr


def _vconvi(space, base, n):
    """Convert ``n`` contiguous integer slots starting at ``base``."""
    if space.typed:
        if space._tag[base:base + n].any():
            raise _VBail  # a float-tagged slot in the range
        arr = space._ival[base:base + n]
        if ((arr >= 2147483648) | (arr < -2147483648)).any():
            raise _VBail
        # Copy: gathers must capture the pre-kernel image; a view would
        # alias later scatters into the same lane.
        return arr.copy()
    values = space.slots[base:base + n]
    if set(map(type, values)) != {int}:
        raise _VBail
    try:
        # dtype is known, so fromiter skips asarray's inference pass; an
        # int beyond int64 (impossible for canonical slots, but this is
        # the verifier) overflows to OverflowError, not silent wrap.
        arr = _np.fromiter(values, _np.int64, n)
    except (OverflowError, ValueError):
        raise _VBail
    if (_np.abs(arr) >= 2147483648).any():
        raise _VBail
    return arr


def _vconvf(space, base, n):
    """Convert ``n`` contiguous float slots starting at ``base``."""
    if space.typed:
        if (space._tag[base:base + n] != 1).any():  # TAG_FLOAT
            raise _VBail
        return space._fval[base:base + n].copy()
    values = space.slots[base:base + n]
    # set(map(type, ...)) runs the whole scan in C; asarray alone cannot
    # stand in for it because a mixed int/float slice converts silently.
    if set(map(type, values)) != {float}:
        raise _VBail
    return _np.fromiter(values, _np.float64, n)


#: Gather-window cache bound (satellite of ISSUE 9): at most this many
#: windows per kernel invocation; least-recently-used window is evicted.
_WINDOW_CAP_ENV = "REPRO_VEC_WINDOW_CAP"
_WINDOW_CAP_DEFAULT = 32
_WINDOW_STATS = {"evictions": 0}


def _window_cap():
    raw = _os.environ.get(_WINDOW_CAP_ENV)
    if not raw:
        return _WINDOW_CAP_DEFAULT
    try:
        return max(1, int(raw))
    except ValueError:
        return _WINDOW_CAP_DEFAULT


def vec_runtime_stats():
    """In-process vector-tier cache counters (for ``repro cache stats``)."""
    return {
        "window_cap": _window_cap(),
        "window_evictions": _WINDOW_STATS["evictions"],
    }


def _vwindow(space, base, n, windows, convert):
    """Serve a contiguous gather from per-invocation window cache.

    Overlapping gathers of the same array are the common case (stencils
    read ``U[i-1]``, ``U[i+1]``, ... in one body), and every gather in a
    kernel reads the pre-kernel memory image — scatters are deferred to
    the commit step — so a slot range converted once stays valid for the
    whole invocation. On overlap only the uncovered prefix/suffix is
    converted, which turns k shifted reads of one array into ~one
    conversion pass instead of k."""
    lo, hi = base, base + n
    for index, window in enumerate(windows):
        wlo, whi = window[0], window[1]
        if wlo <= lo and hi <= whi:
            if index != len(windows) - 1:
                windows.append(windows.pop(index))  # LRU: refresh on hit
            return window[2][lo - wlo:hi - wlo]
        if lo <= whi and wlo <= hi:  # overlap or adjacency: extend
            new_lo, new_hi = min(lo, wlo), max(hi, whi)
            parts = []
            if new_lo < wlo:
                parts.append(convert(space, new_lo, wlo - new_lo))
            parts.append(window[2])
            if whi < new_hi:
                parts.append(convert(space, whi, new_hi - whi))
            arr = _np.concatenate(parts) if len(parts) > 1 else parts[0]
            window[0], window[1], window[2] = new_lo, new_hi, arr
            if index != len(windows) - 1:
                windows.append(windows.pop(index))
            return arr[lo - new_lo:hi - new_lo]
    if len(windows) >= _window_cap():
        del windows[0]
        _WINDOW_STATS["evictions"] += 1
    arr = convert(space, lo, n)
    windows.append([lo, hi, arr])
    return arr


def _vgathi(space, ptrs, stride, n, cache=None):
    """Strided integer gather. Bails unless every touched slot holds a
    Python int of canonical i32-or-address magnitude, which is what keeps
    all downstream int64 arithmetic exact."""
    base = _vaddr(space, ptrs, stride, n)
    if stride == 1 and cache is not None:
        return _vwindow(space, base, n, cache, _vconvi)
    stop = base + stride * n
    if stop < 0:
        stop = None
    if space.typed:
        if space._tag[base:stop:stride].any():
            raise _VBail
        arr = space._ival[base:stop:stride]
        if ((arr >= 2147483648) | (arr < -2147483648)).any():
            raise _VBail
        return arr.copy()
    values = space.slots[base:stop:stride]
    if set(map(type, values)) != {int}:
        raise _VBail
    try:
        arr = _np.fromiter(values, _np.int64, n)
    except (OverflowError, ValueError):
        raise _VBail
    if (_np.abs(arr) >= 2147483648).any():
        raise _VBail
    return arr


def _vgathf(space, ptrs, stride, n, cache=None):
    """Strided float gather. The per-element ``type is float`` check keeps
    value identity through the float64 round-trip: an int smuggled into a
    float-typed slot must take the scalar path."""
    base = _vaddr(space, ptrs, stride, n)
    if stride == 1 and cache is not None:
        return _vwindow(space, base, n, cache, _vconvf)
    stop = base + stride * n
    if stop < 0:
        stop = None
    if space.typed:
        if (space._tag[base:stop:stride] != 1).any():  # TAG_FLOAT
            raise _VBail
        return space._fval[base:stop:stride].copy()
    values = space.slots[base:stop:stride]
    if set(map(type, values)) != {float}:
        raise _VBail
    return _np.fromiter(values, _np.float64, n)


def _vg0i(space, ptr):
    """Loop-invariant (stride-0) integer load, broadcast as a scalar."""
    if isinstance(ptr, _np.ndarray):
        p = int(ptr[0])
        if not (ptr == p).all():
            raise _VBail
    else:
        p = ptr
    if p < 0 or p >= space._stack_pointer:
        raise _VBail
    if space.typed:
        if space._tag[p]:
            raise _VBail
        value = int(space._ival[p])
        if not -2147483648 <= value < 2147483648:
            raise _VBail
        return value
    value = space.slots[p]
    if type(value) is not int or not -2147483648 <= value < 2147483648:
        raise _VBail
    return value


def _vg0f(space, ptr):
    """Loop-invariant (stride-0) float load, broadcast as a scalar."""
    if isinstance(ptr, _np.ndarray):
        p = int(ptr[0])
        if not (ptr == p).all():
            raise _VBail
    else:
        p = ptr
    if p < 0 or p >= space._stack_pointer:
        raise _VBail
    if space.typed:
        if space._tag[p] != 1:  # TAG_FLOAT
            raise _VBail
        return float(space._fval[p])
    value = space.slots[p]
    if type(value) is not float:
        raise _VBail
    return value


def _vput(space, base, stride, n, values):
    """Strided scatter of ``values`` (already verified by ``_vpre``).
    ``tolist`` keeps plain Python ints/floats in the slot list, so the
    memory image is indistinguishable from scalar execution."""
    if stride == 0:
        # Only reachable with trip count 1 (a stride-0 store over more
        # iterations is a WAW loop-carried dependence and never DOALL).
        if isinstance(values, _np.ndarray):
            last = values[n - 1].item()
        else:
            last = values
        if space.typed:
            space._write(base, last)
        else:
            space.slots[base] = last
        return
    stop = base + stride * n
    if stop < 0:
        stop = None
    if space.typed:
        window = slice(base, stop, stride)
        if isinstance(values, _np.ndarray):
            is_float = values.dtype.kind == "f"
        else:
            is_float = isinstance(values, float)
        if is_float:
            space._fval[window] = values
            space._tag[window] = 1  # TAG_FLOAT
        else:
            space._ival[window] = values
            space._tag[window] = 0  # TAG_INT
        return
    if isinstance(values, _np.ndarray):
        space.slots[base:stop:stride] = values.tolist()
    else:
        space.slots[base:stop:stride] = [values] * n


def _vbase(ptrs):
    """Base address of an (already verified) access for event emission."""
    if isinstance(ptrs, _np.ndarray):
        return int(ptrs[0])
    return ptrs


# -- vectorized pure intrinsics ------------------------------------------------
#
# Only intrinsics whose NumPy lowering is *bit-identical* to the scalar
# implementation qualify: exact integer avalanche (uint64 wraps mod 2**64,
# then masking to 32 bits equals exact arithmetic mod 2**32), IEEE-exact
# float ops (sqrt/floor/abs are correctly rounded in both libm and NumPy),
# and min/max spelled as the same comparison CPython's min()/max() perform
# (NaN picks the *first* operand either way). Transcendentals (sin, cos,
# exp, log, pow) stay scalar: libm and NumPy may differ in the last ulp.


def _vhashu(x):
    """uint64 lowering of :func:`_hash32` for int64 arrays."""
    v = x.astype(_np.uint64) & _np.uint64(0xFFFFFFFF)
    v ^= v >> _np.uint64(16)
    v = (v * _np.uint64(0x7FEB352D)) & _np.uint64(0xFFFFFFFF)
    v ^= v >> _np.uint64(15)
    v = (v * _np.uint64(0x846CA68B)) & _np.uint64(0xFFFFFFFF)
    v ^= v >> _np.uint64(16)
    return v


def _vhash(x):
    """``hash_i32``: avalanche then canonicalize to signed i32."""
    if isinstance(x, _np.ndarray):
        return _vw(_vhashu(x).astype(_np.int64))
    return _vw(_hash32(x))


def _vnoise(x):
    """``noise_f64``: 24 hash bits scaled into [0, 1). The int -> float64
    conversion and the power-of-two division are both exact."""
    if isinstance(x, _np.ndarray):
        return (_vhashu(x) & _np.uint64(0xFFFFFF)).astype(_np.float64) \
            / 16777216.0
    return (_hash32(x) & 0xFFFFFF) / 16777216.0


def _viabs(x):
    """``iabs``: abs then wrap (INT_MIN maps back to INT_MIN)."""
    return _vw(abs(x))


def _vimin(a, b):
    """``imin``: integers only, so np.minimum matches Python min exactly."""
    if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
        return _np.minimum(a, b)
    return min(a, b)


def _vimax(a, b):
    """``imax``: integers only, so np.maximum matches Python max exactly."""
    if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
        return _np.maximum(a, b)
    return max(a, b)


def _vfmin(a, b):
    """``fmin`` as CPython's ``min(a, b)``: ``b if b < a else a``, which
    keeps the first operand on NaN (np.minimum would propagate NaN)."""
    if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
        return _np.where(b < a, b, a)
    return min(a, b)


def _vfmax(a, b):
    """``fmax`` as CPython's ``max(a, b)``: ``b if b > a else a``."""
    if isinstance(a, _np.ndarray) or isinstance(b, _np.ndarray):
        return _np.where(b > a, b, a)
    return max(a, b)


def _vsqrt(x):
    """``sqrt`` (correctly rounded in both libm and NumPy). A negative
    input would trap in the scalar tier, so the kernel bails and lets the
    scalar replay raise at the exact faulting cost."""
    if isinstance(x, _np.ndarray):
        if (x < 0).any():
            raise _VBail
        return _np.sqrt(x)
    if x < 0:
        raise _VBail
    return _math.sqrt(x)


def _vfloor(x):
    """``floor``: exact in float64. Non-finite input raises in the scalar
    implementation (math.floor), so the kernel bails instead of silently
    producing NumPy's inf/nan."""
    if isinstance(x, _np.ndarray):
        if not _np.isfinite(x).all():
            raise _VBail
        return _np.floor(x)
    return float(_math.floor(x))


#: Intrinsics the kernel may call: name -> generated-code callable. Every
#: entry is pure (no machine access, no memory, no global state) and
#: bit-identical to the scalar implementation (see block comment above).
_VEC_INTRINSICS = {
    "sqrt": "_vsqrt",
    "fabs": "abs",
    "floor": "_vfloor",
    "fmin": "_vfmin",
    "fmax": "_vfmax",
    "iabs": "_viabs",
    "imin": "_vimin",
    "imax": "_vimax",
    "hash_i32": "_vhash",
    "noise_f64": "_vnoise",
}


def vec_namespace():
    """Names the vector sections reference from generated sources."""
    return {
        "_np": _np,
        "_VBail": _VBail,
        "_vw": _vw,
        "_vb": _vb,
        "_vsel": _vsel,
        "_vf": _vf,
        "_vfptosi": _vfptosi,
        "_vtrunc": _vtrunc,
        "_vsdiv": _vsdiv,
        "_vsrem": _vsrem,
        "_vudiv": _vudiv,
        "_vurem": _vurem,
        "_vfdiv": _vfdiv,
        "_vgathi": _vgathi,
        "_vgathf": _vgathf,
        "_vg0i": _vg0i,
        "_vg0f": _vg0f,
        "_vpre": _vpre,
        "_vput": _vput,
        "_vbase": _vbase,
        "_vhash": _vhash,
        "_vnoise": _vnoise,
        "_viabs": _viabs,
        "_vimin": _vimin,
        "_vimax": _vimax,
        "_vfmin": _vfmin,
        "_vfmax": _vfmax,
        "_vsqrt": _vsqrt,
        "_vfloor": _vfloor,
    }


# -- planning -----------------------------------------------------------------


class _VecAccess:
    """One Load/Store in the loop body with its affine access function."""

    __slots__ = ("instruction", "is_write", "offset", "stride", "base",
                 "is_float")

    def __init__(self, instruction, is_write, offset, stride, base, is_float):
        self.instruction = instruction
        self.is_write = is_write
        self.offset = offset      # timestamp offset within one iteration
        self.stride = stride      # address delta per iteration
        self.base = base          # base object (for alias queries)
        self.is_float = is_float


class VecLoopPlan:
    """Everything the emitter needs to plant one vector section."""

    __slots__ = ("loop", "loop_id", "preheader", "header", "latch",
                 "exit_block", "chain", "phis", "phi_steps", "trip",
                 "trip_runtime", "header_cost", "iter_cost", "total_cost",
                 "accesses", "exit_cond")

    def __init__(self, loop, preheader, header, latch, exit_block, chain,
                 phis, phi_steps, trip, trip_runtime, header_cost, iter_cost,
                 accesses, exit_cond):
        self.loop = loop
        self.loop_id = loop.loop_id
        self.preheader = preheader
        self.header = header
        self.latch = latch
        self.exit_block = exit_block
        self.chain = chain            # straight-line body blocks, in order
        self.phis = phis              # header phis, in header order
        self.phi_steps = phi_steps    # id(phi) -> constant step per iteration
        self.trip = trip              # static trip count, or None when the
        self.trip_runtime = trip_runtime  # section computes it at runtime
        self.header_cost = header_cost
        self.iter_cost = iter_cost    # header + body cost per iteration
        self.total_cost = None if trip is None \
            else trip * iter_cost + header_cost
        self.accesses = accesses      # list[_VecAccess], program order
        self.exit_cond = exit_cond    # the header ICmp

    @property
    def trip_bound(self):
        """Largest trip count a kernel invocation can see (used by the
        static magnitude and alias proofs)."""
        return self.trip if self.trip is not None else _MAX_VEC_TRIP


def _header_shape(loop, cfg):
    """Canonical counted-loop header: phis, one ICmp, a CondBr on it,
    exactly one in-loop and one out-of-loop successor, and the header as
    the loop's only exiting block. Returns (icmp, body_entry, exit_block)
    or None."""
    header = loop.header
    instructions = header.instructions
    icmp = None
    for position, instruction in enumerate(instructions):
        if isinstance(instruction, Phi):
            if icmp is not None:
                return None
            continue
        if isinstance(instruction, ICmp):
            if icmp is not None or position != len(instructions) - 2:
                return None
            icmp = instruction
            continue
        if isinstance(instruction, CondBr):
            if icmp is None or instruction.condition is not icmp:
                return None
            continue
        return None
    if icmp is None or not isinstance(header.terminator, CondBr):
        return None
    inside = [s for s in header.terminator.successors() if s in loop.blocks]
    outside = [s for s in header.terminator.successors() if s not in loop.blocks]
    if len(inside) != 1 or len(outside) != 1:
        return None
    if set(loop.exiting_blocks(cfg)) != {header}:
        return None
    return icmp, inside[0], outside[0]


def _body_chain(loop, body_entry, latch):
    """The body as a straight line of Br-terminated blocks from the
    header's in-loop successor down to the latch, covering the whole
    loop. Returns the ordered block list or None."""
    header = loop.header
    chain = []
    seen = set()
    block = body_entry
    while True:
        if block is header or id(block) in seen:
            return None
        seen.add(id(block))
        chain.append(block)
        terminator = block.terminator
        if not isinstance(terminator, Br):
            return None
        if block is latch:
            if terminator.target is not header:
                return None
            break
        block = terminator.target
        if block not in loop.blocks:
            return None
    if set(chain) | {header} != loop.blocks:
        return None
    return chain


def _scan_ops(chain):
    """Structural screen of the body: no phis, no allocas, calls only to
    whitelisted pure intrinsics, and every op within the dual-helper
    table. Returns a BAIL_* reason or None."""
    for block in chain:
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                return BAIL_CFG
            if isinstance(instruction, Call):
                callee = instruction.callee
                if not callee.is_intrinsic:
                    return BAIL_CALL
                info = callee.intrinsic
                if callee.name not in _VEC_INTRINSICS or info.global_state \
                        or info.reads_memory or info.writes_memory:
                    return BAIL_CALL
                continue
            if isinstance(instruction, Alloca):
                return BAIL_OP
            if isinstance(instruction, BinaryOp):
                opcode = instruction.opcode
                type_ = instruction.type
                if type_.is_float:
                    if opcode not in ("fadd", "fsub", "fmul", "fdiv"):
                        return BAIL_OP
                elif type_.is_integer:
                    if type_.width not in (1, 32):
                        return BAIL_OP
                    if opcode in ("sdiv", "srem", "udiv", "urem"):
                        if type_.width != 32:
                            return BAIL_OP
                    elif opcode not in ("add", "sub", "mul", "and", "or",
                                        "xor", "shl", "ashr", "lshr"):
                        return BAIL_OP
                else:
                    return BAIL_OP
                for operand in (instruction.lhs, instruction.rhs):
                    if isinstance(operand, ConstantFloat) \
                            and not _math.isfinite(operand.value):
                        return BAIL_OP
            elif isinstance(instruction, ICmp):
                if instruction.predicate not in _ICMP:
                    return BAIL_OP
            elif isinstance(instruction, FCmp):
                if instruction.predicate not in _FCMP:
                    return BAIL_OP
                for operand in (instruction.lhs, instruction.rhs):
                    if isinstance(operand, ConstantFloat) \
                            and not _math.isfinite(operand.value):
                        return BAIL_OP
            elif isinstance(instruction, Cast):
                if instruction.opcode not in ("sitofp", "fptosi", "zext",
                                              "trunc"):
                    return BAIL_OP
            elif isinstance(instruction, Select):
                for operand in (instruction.true_value,
                                instruction.false_value):
                    if isinstance(operand, ConstantFloat) \
                            and not _math.isfinite(operand.value):
                        return BAIL_OP
            elif isinstance(instruction, (Load, Store, GEP, Br)):
                pass
            else:
                return BAIL_OP
    return None


def _plan_pattern_ok(loop, plan, preheader, latch, exit_block):
    """The instrumented kernel reproduces exactly the canonical event
    pattern (one enter, one iter per trip, one exit, no latch-value
    shipping); anything else on the loop's edges means the plan wants
    events the closed form does not produce."""
    header = loop.header
    if plan is None:
        return False
    if plan.edge_actions.get((id(preheader), id(header))) != \
            [("enter", loop.loop_id)]:
        return False
    if plan.edge_actions.get((id(latch), id(header))) != \
            [("iter", loop.loop_id)]:
        return False
    if plan.edge_actions.get((id(header), id(exit_block))) != \
            [("exit", loop.loop_id)]:
        return False
    if plan.latch_values.get((id(latch), id(header))):
        return False
    return True


def _has_lcd_hooks(loop, plan):
    if plan is None:
        return False
    for block in loop.blocks:
        for instruction in block.instructions:
            key = id(instruction)
            if plan.def_hooks.get(key) or plan.use_hooks.get(key) \
                    or plan.call_use_hooks.get(key):
                return True
    return False


def _iv_chain_ok(value, loop, header):
    """Whether SCEV's constant step for a header phi is trustworthy at
    runtime: every operation between the phi(s) and the latch value must
    be ring-congruent mod 2**32 (add/sub/mul/shl, GEP address math, zext)
    over canonical values — then SCEV's exactly-folded recurrence equals
    the wrapped runtime sequence. A ``trunc`` (which SCEV looks through)
    or any opaque op poisons the chain."""
    work = [value]
    seen = set()
    while work:
        v = work.pop()
        if id(v) in seen:
            continue
        seen.add(id(v))
        if isinstance(v, (ConstantInt, Argument, GlobalVariable)):
            continue
        if isinstance(v, Phi):
            if v.parent is header:
                continue  # mutual induction: every header phi is checked
            return False
        if not isinstance(v, Instruction):
            return False
        if v.parent not in loop.blocks:
            continue  # loop-invariant: read once from its register
        if isinstance(v, BinaryOp):
            if v.opcode not in ("add", "sub", "mul", "shl"):
                return False
            work.append(v.lhs)
            work.append(v.rhs)
            continue
        if isinstance(v, GEP):
            work.append(v.pointer)
            work.extend(v.indices)
            continue
        if isinstance(v, Cast) and v.opcode == "zext":
            work.append(v.value)
            continue
        return False
    return True


def _controlling_recurrence(icmp, header, scev, loop, const_start=True):
    """Find the icmp operand that is this loop's counted IV: a header phi
    whose SCEV is a constant-step AddRec of this loop (with a constant
    start too when ``const_start``). Returns (phi, addrec, bound_operand)
    or None."""
    for side, other in ((icmp.lhs, icmp.rhs), (icmp.rhs, icmp.lhs)):
        if not (isinstance(side, Phi) and side.parent is header):
            continue
        rec = scev.get(side)
        if (isinstance(rec, SCEVAddRec) and rec.loop is loop
                and isinstance(rec.step, SCEVConstant)
                and (not const_start or isinstance(rec.start, SCEVConstant))):
            return side, rec, other
    return None


def _trip_exact(icmp, header, preheader, scev, loop, trip):
    """Whether the static trip count provably equals the runtime first
    exit. SCEV folds constants exactly and looks through truncs, so the
    static count is only trusted when the bound compare is pure 32-bit
    with *literal* endpoints and the whole IV range [start, start+step*trip]
    stays inside i32 — then the runtime sequence is monotonic, unwrapped,
    and mathematically identical to SCEV's model."""
    if not (icmp.lhs.type.is_integer and icmp.lhs.type.width == 32
            and icmp.rhs.type.is_integer and icmp.rhs.type.width == 32):
        return False
    found = _controlling_recurrence(icmp, header, scev, loop)
    if found is None:
        return False
    phi, rec, bound = found
    if not isinstance(bound, ConstantInt):
        return False
    start_in = phi.incoming_for_block(preheader)
    if not isinstance(start_in, ConstantInt):
        return False
    start, step = rec.start.value, rec.step.value
    if start_in.value != start:
        return False
    if not (abs(start) < _WRAP_LIMIT and abs(step) < _WRAP_LIMIT
            and abs(bound.value) < _WRAP_LIMIT
            and abs(start + step * trip) < _WRAP_LIMIT):
        return False
    return True


#: Predicate seen from the phi's side when the IV sits on the icmp's rhs.
_PRED_SWAPPED = {"slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle"}


def _trip_runtime(icmp, header, preheader, scev, loop):
    """Runtime-computable first-exit trip count for a counted loop whose
    start/bound are loop-invariant but not literal: ``while i <pred> B``
    with an i32 IV of constant nonzero step marching *toward* the bound.
    The emitted section computes ``trip`` from the live start and bound
    registers (canonical i32 by the runtime invariant) and guards that
    the final IV value ``start + step*trip`` still fits i32 — then the
    scalar sequence is monotonic and unwrapped up to the first exit, so
    the closed form is exact. Returns ``(start_value, bound_value, step,
    inclusive)`` or None."""
    if not (icmp.lhs.type.is_integer and icmp.lhs.type.width == 32
            and icmp.rhs.type.is_integer and icmp.rhs.type.width == 32):
        return None
    found = _controlling_recurrence(icmp, header, scev, loop,
                                    const_start=False)
    if found is None:
        return None
    phi, rec, bound = found
    predicate = icmp.predicate
    if phi is icmp.rhs:
        predicate = _PRED_SWAPPED.get(predicate)
    if predicate not in _PRED_SWAPPED:  # eq/ne or unsigned
        return None
    step = rec.step.value
    if step == 0 or abs(step) >= _WRAP_LIMIT:
        return None
    if (step > 0) != (predicate in ("slt", "sle")):
        return None  # IV marches away from the bound: 0 or wrap-bounded
    if isinstance(bound, Instruction) and bound.parent in loop.blocks:
        return None  # loop-variant bound
    start = phi.incoming_for_block(preheader)
    return start, bound, step, predicate in ("sle", "sge")


def _phi_step(phi, scev, loop):
    """Constant per-iteration step of a header phi, or None when the phi
    is not a small-step affine recurrence of this loop (or its type is
    outside the kernel's int32/pointer model)."""
    type_ = phi.type
    if not (type_.is_pointer or (type_.is_integer and type_.width == 32)):
        return None
    rec = scev.get(phi)
    if not (isinstance(rec, SCEVAddRec) and rec.loop is loop
            and isinstance(rec.step, SCEVConstant)):
        return None
    step = rec.step.value
    if abs(step) >= _WRAP_LIMIT:
        return None
    return step


def _operand_bound(value, bounds):
    """Static magnitude bound of an operand feeding kernel arithmetic."""
    known = bounds.get(id(value))
    if known is not None:
        return known
    if isinstance(value, ConstantInt):
        return abs(value.value)
    if isinstance(value, ConstantFloat):
        return 0
    type_ = getattr(value, "type", None)
    if type_ is None:
        return _MAG_LIMIT * 4
    if type_.is_float:
        return 0
    if type_.is_pointer:
        return _ADDR_BOUND
    if type_.is_integer:
        if type_.width == 32:
            return _WRAP_LIMIT  # runtime i32 values are always canonical
        if type_.width == 1:
            return 2
    return _MAG_LIMIT * 4  # unknown width: poison any arithmetic using it


def _magnitudes_ok(vec_plan):
    """Prove every kernel intermediate stays strictly inside int64 (with
    ``_vw`` headroom), so NumPy's fixed-width arithmetic agrees with the
    scalar tiers' arbitrary-precision Python ints. Gathers contribute
    canonical-i32 bounds (enforced at runtime by ``_vgathi``), IV vectors
    contribute start+step*trip extents, and each op's inputs are checked
    against the 2**62 headroom limit."""
    bounds = {}
    for phi in vec_plan.phis:
        step = vec_plan.phi_steps[id(phi)]
        if phi.type.is_pointer:
            bounds[id(phi)] = _ADDR_BOUND + abs(step) * vec_plan.trip_bound
        else:
            bounds[id(phi)] = _WRAP_LIMIT
    for block in vec_plan.chain:
        for instruction in block.instructions:
            if isinstance(instruction, Br):
                continue
            if isinstance(instruction, Load):
                if _operand_bound(instruction.pointer, bounds) >= _MAG_LIMIT:
                    return False
                bounds[id(instruction)] = 0 if instruction.type.is_float \
                    else _WRAP_LIMIT
                continue
            if isinstance(instruction, Store):
                if _operand_bound(instruction.pointer, bounds) >= _MAG_LIMIT:
                    return False
                if _operand_bound(instruction.value, bounds) >= _MAG_LIMIT:
                    return False
                continue
            if isinstance(instruction, GEP):
                total = _operand_bound(instruction.pointer, bounds)
                element = instruction.pointer.type.pointee
                for index in instruction.indices:
                    if element.is_array:
                        scale = element.element.size_in_slots()
                        element = element.element
                    else:
                        scale = element.size_in_slots()
                    total += scale * _operand_bound(index, bounds)
                if total >= _MAG_LIMIT:
                    return False
                bounds[id(instruction)] = total
                continue
            if isinstance(instruction, Call):
                # Whitelisted intrinsics only (screened by _scan_ops);
                # every one returns a canonical i32 or a float, and the
                # hash lowering is exact as long as its int64 input is.
                for argument in instruction.args:
                    if _operand_bound(argument, bounds) >= _MAG_LIMIT:
                        return False
                bounds[id(instruction)] = 0 if instruction.type.is_float \
                    else _WRAP_LIMIT
                continue
            if isinstance(instruction, BinaryOp):
                a = _operand_bound(instruction.lhs, bounds)
                b = _operand_bound(instruction.rhs, bounds)
                opcode = instruction.opcode
                type_ = instruction.type
                if type_.is_float:
                    bounds[id(instruction)] = 0
                    continue
                if opcode in ("add", "sub"):
                    peak, out = a + b, a + b
                elif opcode == "mul":
                    peak, out = a * b, a * b
                elif opcode == "shl":
                    shift = 31 if type_.width == 32 else 1
                    peak = out = a * (1 << shift)
                elif opcode in ("and", "or", "xor"):
                    peak = out = 2 * max(a, b)
                elif opcode == "ashr":
                    peak, out = a, a
                elif opcode == "lshr":
                    peak, out = max(a, 1 << 33), _WRAP_LIMIT
                else:  # sdiv/srem/udiv/urem at width 32
                    peak, out = max(a, b), _WRAP_LIMIT
                if peak >= _MAG_LIMIT:
                    return False
                if type_.width == 32 and opcode in ("add", "sub", "mul",
                                                    "shl", "lshr"):
                    out = _WRAP_LIMIT  # _vw re-canonicalizes
                bounds[id(instruction)] = out
                continue
            if isinstance(instruction, (ICmp, FCmp)):
                a = _operand_bound(instruction.lhs, bounds)
                b = _operand_bound(instruction.rhs, bounds)
                if max(a, b) >= _MAG_LIMIT:
                    return False
                bounds[id(instruction)] = 2
                continue
            if isinstance(instruction, Select):
                bounds[id(instruction)] = max(
                    _operand_bound(instruction.true_value, bounds),
                    _operand_bound(instruction.false_value, bounds),
                )
                if bounds[id(instruction)] >= _MAG_LIMIT:
                    return False
                continue
            if isinstance(instruction, Cast):
                a = _operand_bound(instruction.value, bounds)
                opcode = instruction.opcode
                if opcode == "sitofp":
                    if a >= _MAG_LIMIT:
                        return False
                    bounds[id(instruction)] = 0
                elif opcode == "fptosi":
                    bounds[id(instruction)] = _WRAP_LIMIT  # helper guards
                elif opcode == "zext":
                    bounds[id(instruction)] = a
                else:  # trunc
                    width = instruction.type.width
                    bounds[id(instruction)] = 1 << max(0, width - 1)
                continue
    return True


def _intra_alias(dep, footprints, first, second, trip):
    """Whether the gather-everything/scatter-everything reordering is
    unsafe for one (store, later access) pair *within* an iteration.
    Cross-iteration overlaps are already excluded by the DOALL verdict;
    this closes the same-iteration cases the verdict says nothing about.
    Returns a BAIL_* reason or None."""
    verdict = dep._alias(first, second)
    if verdict == "no":
        return None
    if verdict == "may":
        return BAIL_ALIAS
    fp1 = footprints[id(first.instruction)]
    fp2 = footprints[id(second.instruction)]
    if fp1.terms != fp2.terms:
        return BAIL_ALIAS  # symbolic parts differ: cannot compare offsets
    s1, c1 = fp1.stride, fp1.const
    s2, c2 = fp2.stride, fp2.const
    if s1 == s2:
        if c1 == c2:
            # Same cell every iteration. A later load would need store
            # forwarding; a later store is fine (scatters run in program
            # order, so the last write wins either way).
            return BAIL_ALIAS if not second.is_write else None
        return None  # constant nonzero gap: never equal in one iteration
    if (c2 - c1) % (s1 - s2) == 0:
        k = (c2 - c1) // (s1 - s2)
        if 0 <= k < trip:
            return BAIL_ALIAS
    return None


def _plan_loop(loop, cfg, scev, dep, plan, instrumented):
    """Plan one innermost loop. Returns (VecLoopPlan, None) on success or
    (None, BAIL_*) — each check ordered so every reason stays reachable
    (and unit-testable) behind the previous ones."""
    if _np is None:
        return None, BAIL_NUMPY
    if loop.subloops:
        return None, BAIL_INNER
    preheader = loop.preheader(cfg)
    latch = loop.single_latch()
    if latch is None and loop.latches:
        # Distinct from "not simplified": loop-simplify cannot merge
        # multiple backedges, so this is a terminal classification the
        # census must report (not silently fold into a generic bail).
        return None, BAIL_MULTI_LATCH
    if preheader is None or latch is None \
            or not isinstance(preheader.terminator, Br):
        return None, BAIL_NOT_SIMPLIFIED
    header = loop.header
    if latch is header:
        return None, BAIL_HEADER  # body work inside the header block
    shape = _header_shape(loop, cfg)
    if shape is None:
        return None, BAIL_HEADER
    icmp, body_entry, exit_block = shape
    chain = _body_chain(loop, body_entry, latch)
    if chain is None:
        return None, BAIL_CFG
    reason = _scan_ops(chain)
    if reason is not None:
        return None, reason
    if instrumented:
        if not _plan_pattern_ok(loop, plan, preheader, latch, exit_block):
            return None, BAIL_INSTR
        if _has_lcd_hooks(loop, plan):
            return None, BAIL_HOOKS
    trip = scev.trip_count(loop)
    trip_runtime = None
    if trip is not None and not 1 <= trip <= _MAX_VEC_TRIP:
        return None, BAIL_TRIP_SIZE
    if trip is None or not _trip_exact(icmp, header, preheader, scev, loop,
                                       trip):
        had_static = trip is not None
        trip_runtime = _trip_runtime(icmp, header, preheader, scev, loop)
        if trip_runtime is None:
            return None, BAIL_TRIP_WRAP if had_static else BAIL_TRIP
        trip = None  # the section computes (and guards) the trip itself

    phis = list(header.phis())
    phi_steps = {}
    for phi in phis:
        step = _phi_step(phi, scev, loop)
        if step is None:
            return None, BAIL_IV
        if not _iv_chain_ok(phi.incoming_for_block(latch), loop, header):
            return None, BAIL_IV
        phi_steps[id(phi)] = step

    header_cost = len(header.instructions)
    iter_cost = header_cost
    accesses = []
    footprints = {}
    offset = header_cost
    for block in chain:
        # Intrinsic calls cost 1 + extra; the scalar JIT adds the extra to
        # _cost mid-block, so it shifts the *next* blocks' event bases but
        # not this block's (events are stamped `_base + position`).
        extras = 0
        for position, instruction in enumerate(block.instructions):
            if isinstance(instruction, Call):
                extras += max(0, instruction.callee.intrinsic.cost - 1)
                continue
            if not isinstance(instruction, (Load, Store)):
                continue
            fp = dep._footprint(instruction.pointer, loop, block)
            if fp is None or not fp.exact:
                return None, BAIL_ACCESS
            base = _trace_to_base(instruction.pointer)
            if not isinstance(base, (GlobalVariable, Alloca, Argument)):
                return None, BAIL_ACCESS
            is_write = isinstance(instruction, Store)
            if is_write and fp.stride == 0 and (trip is None or trip > 1):
                # Guaranteed loop-carried WAW; the verdict check below
                # would also catch it, but never let it near a kernel.
                return None, BAIL_ACCESS
            is_float = (instruction.value.type.is_float if is_write
                        else instruction.type.is_float)
            accesses.append(_VecAccess(
                instruction, is_write, offset + position, fp.stride, base,
                is_float,
            ))
            footprints[id(instruction)] = fp
        offset += len(block.instructions) + extras
        iter_cost += len(block.instructions) + extras

    vec_plan = VecLoopPlan(
        loop, preheader, header, latch, exit_block, chain, phis, phi_steps,
        trip, trip_runtime, header_cost, iter_cost, accesses, icmp,
    )
    if not _magnitudes_ok(vec_plan):
        return None, BAIL_OP
    for index, access in enumerate(accesses):
        if not access.is_write:
            continue
        for later in accesses[index + 1:]:
            reason = _intra_alias(dep, footprints, access, later,
                                  vec_plan.trip_bound)
            if reason is not None:
                return None, reason
    if dep.loop_verdict(loop).verdict != VERDICT_DOALL:
        return None, BAIL_VERDICT
    return vec_plan, None


def plan_vector_loops(function, plan, instrumented):
    """Plan every innermost loop of ``function``. Returns
    ``(kernels, decisions)`` where kernels maps ``id(preheader)`` to its
    :class:`VecLoopPlan` (the emitter's hook point is the preheader's
    branch) and decisions is one record per innermost loop."""
    loop_info = LoopInfo(function)
    kernels = {}
    decisions = []
    loops = [
        loop for loop in loop_info.loops_in_postorder() if not loop.subloops
    ]
    if not loops:
        return kernels, decisions
    scev = ScalarEvolution(function, loop_info)
    # Memory summaries make calls transparent to the verdict (pure
    # intrinsics contribute nothing), matching analyze_module's setup so
    # the kernel's DOALL gate is the same verdict the crosscheck audits.
    dep = DependenceAnalysis(
        function, loop_info=loop_info, scev=scev,
        summaries=module_memory_summaries(function.module),
    )
    for loop in loops:
        vec_plan, reason = _plan_loop(
            loop, loop_info.cfg, scev, dep, plan, instrumented
        )
        if vec_plan is not None:
            kernels[id(vec_plan.preheader)] = vec_plan
            decisions.append({
                "loop_id": loop.loop_id,
                "status": "vectorized",
                "reason": None,
                "trip": "runtime" if vec_plan.trip is None else vec_plan.trip,
            })
        else:
            decisions.append({
                "loop_id": loop.loop_id,
                "status": "bailout",
                "reason": reason,
                "trip": None,
            })
    return kernels, decisions


def vector_decisions(module, instrumentation=None):
    """Per-loop vectorizer decisions for a whole module, as the
    instrumented tier would make them (the tier every figure runs on)."""
    if instrumentation is None:
        from ..core.instrument import build_instrumentation
        from ..core.static_info import ModuleStaticInfo

        instrumentation = build_instrumentation(ModuleStaticInfo(module))
    decisions = []
    for function in module.defined_functions():
        _, function_decisions = plan_vector_loops(
            function, instrumentation.get(function.name), True
        )
        decisions.extend(function_decisions)
    return decisions


def summarize_vec_decisions(decisions):
    """Aggregate per-loop decisions into the compact shape recorded in run
    manifests: totals plus a bailout-reason histogram."""
    summary = {
        "loops": len(decisions),
        "vectorized": 0,
        "static_trip": 0,
        "runtime_trip": 0,
        "bailouts": {},
    }
    for decision in decisions:
        if decision["status"] == "vectorized":
            summary["vectorized"] += 1
            key = (
                "runtime_trip" if decision["trip"] == "runtime"
                else "static_trip"
            )
            summary[key] += 1
        else:
            reason = decision["reason"]
            summary["bailouts"][reason] = (
                summary["bailouts"].get(reason, 0) + 1
            )
    return summary


# -- emission -----------------------------------------------------------------


def _c(value):
    """Literal int, parenthesized when negative (expression context)."""
    return f"({value})" if value < 0 else str(value)


class _VecEmitter:
    """Lowers one :class:`VecLoopPlan` to source lines inside the scalar
    emitter's preheader arm. Uses the scalar emitter for out-of-loop
    operands (registers, constants, globals) so invariants are read from
    the very same locals the scalar path would use."""

    def __init__(self, emitter, vec_plan):
        self.em = emitter
        self.vec = vec_plan
        self.names = {}       # id(value) -> kernel local
        self.counter = 0
        # A body use of the header compare always sees its "continue"
        # value: the body only runs on iterations the compare let through.
        header_br = vec_plan.header.terminator
        self.names[id(vec_plan.exit_cond)] = (
            "1" if header_br.then_block in vec_plan.loop.blocks else "0"
        )

    def _name(self, value):
        name = f"_vv{self.counter}"
        self.counter += 1
        self.names[id(value)] = name
        return name

    def expr(self, value):
        name = self.names.get(id(value))
        if name is not None:
            return name
        return self.em.expr(value)

    # -- pieces ---------------------------------------------------------------

    def phi_lines(self):
        out = []
        vec = self.vec
        for phi in vec.phis:
            step = vec.phi_steps[id(phi)]
            start = self.em.expr(phi.incoming_for_block(vec.preheader))
            name = self._name(phi)
            if step == 0:
                out.append(f"{name} = {start}")
            elif phi.type.is_pointer:
                out.append(f"{name} = {start} + {_c(step)} * _vi")
            elif step == 1:
                out.append(f"{name} = _vw({start} + _vi)")
            else:
                out.append(f"{name} = _vw({start} + {_c(step)} * _vi)")
        return out

    def body_lines(self):
        """Kernel computation in program order: gathers and store address
        pre-checks inside the guarded region; nothing here mutates any
        machine state."""
        out = []
        vec = self.vec
        strides = {id(a.instruction): a for a in vec.accesses}
        store_index = 0
        for block in vec.chain:
            for instruction in block.instructions:
                if isinstance(instruction, Br):
                    continue
                if isinstance(instruction, Store):
                    access = strides[id(instruction)]
                    pointer = self.expr(instruction.pointer)
                    out.append(
                        f"_vsb{store_index} = _vpre(_space, {pointer}, "
                        f"{_c(access.stride)}, _vn)"
                    )
                    store_index += 1
                    continue
                out.append(self._op_line(instruction, strides))
        return out

    def _op_line(self, instruction, strides):
        expr = self.expr
        if isinstance(instruction, Load):
            access = strides[id(instruction)]
            dst = self._name(instruction)
            pointer = expr(instruction.pointer)
            if access.stride == 0:
                helper = "_vg0f" if access.is_float else "_vg0i"
                return f"{dst} = {helper}(_space, {pointer})"
            helper = "_vgathf" if access.is_float else "_vgathi"
            windows = "_vgf" if access.is_float else "_vgi"
            return (f"{dst} = {helper}(_space, {pointer}, "
                    f"{_c(access.stride)}, _vn, {windows})")
        if isinstance(instruction, Call):
            helper = _VEC_INTRINSICS[instruction.callee.name]
            args = ", ".join(expr(a) for a in instruction.args)
            return f"{self._name(instruction)} = {helper}({args})"
        if isinstance(instruction, BinaryOp):
            return f"{self._name(instruction)} = " \
                + self._binop(instruction)
        if isinstance(instruction, ICmp):
            operator = _ICMP[instruction.predicate]
            return (f"{self._name(instruction)} = _vb({expr(instruction.lhs)}"
                    f" {operator} {expr(instruction.rhs)})")
        if isinstance(instruction, FCmp):
            operator = _FCMP[instruction.predicate]
            return (f"{self._name(instruction)} = _vb({expr(instruction.lhs)}"
                    f" {operator} {expr(instruction.rhs)})")
        if isinstance(instruction, Select):
            return (f"{self._name(instruction)} = "
                    f"_vsel({expr(instruction.condition)}, "
                    f"{expr(instruction.true_value)}, "
                    f"{expr(instruction.false_value)})")
        if isinstance(instruction, GEP):
            terms = [expr(instruction.pointer)]
            element = instruction.pointer.type.pointee
            for index in instruction.indices:
                if element.is_array:
                    scale = element.element.size_in_slots()
                    element = element.element
                else:
                    scale = element.size_in_slots()
                index_expr = expr(index)
                terms.append(
                    index_expr if scale == 1 else f"{scale} * {index_expr}"
                )
            return f"{self._name(instruction)} = " + " + ".join(terms)
        if isinstance(instruction, Cast):
            value = expr(instruction.value)
            dst = self._name(instruction)
            opcode = instruction.opcode
            if opcode == "sitofp":
                return f"{dst} = _vf({value})"
            if opcode == "fptosi":
                return f"{dst} = _vfptosi({value})"
            if opcode == "zext":
                return f"{dst} = {value}"
            width = instruction.type.width
            if width == 1:
                return f"{dst} = {value} & 1"
            mask = (1 << width) - 1
            half = 1 << (width - 1)
            span = 1 << width
            return f"{dst} = _vtrunc({value}, {mask}, {half}, {span})"
        raise AssertionError(f"unplanned kernel op {instruction!r}")

    def _binop(self, instruction):
        a = self.expr(instruction.lhs)
        b = self.expr(instruction.rhs)
        opcode = instruction.opcode
        type_ = instruction.type
        if opcode in ("sdiv", "srem", "udiv", "urem"):
            helper = {"sdiv": "_vsdiv", "srem": "_vsrem",
                      "udiv": "_vudiv", "urem": "_vurem"}[opcode]
            return f"{helper}({a}, {b})"
        if opcode == "fdiv":
            return f"_vfdiv({a}, {b})"
        if opcode in ("fadd", "fsub", "fmul"):
            operator = {"fadd": "+", "fsub": "-", "fmul": "*"}[opcode]
            return f"{a} {operator} {b}"
        if type_.width == 32:
            if opcode == "add":
                return f"_vw({a} + {b})"
            if opcode == "sub":
                return f"_vw({a} - {b})"
            if opcode == "mul":
                return f"_vw({a} * {b})"
            if opcode in ("and", "or", "xor"):
                operator = {"and": "&", "or": "|", "xor": "^"}[opcode]
                return f"{a} {operator} {b}"
            if opcode == "shl":
                return f"_vw({a} << ({b} & 31))"
            if opcode == "ashr":
                return f"{a} >> ({b} & 31)"
            return f"_vw(({a} & 4294967295) >> ({b} & 31))"  # lshr
        # Width-1 (and the scalar tier's other non-32 widths): plain ops.
        width = type_.width
        if opcode == "lshr":
            mask = (1 << width) - 1
            return f"({a} & {mask}) >> ({b} & {width - 1})"
        operator = {"add": "+", "sub": "-", "mul": "*", "and": "&",
                    "or": "|", "xor": "^", "shl": "<<", "ashr": ">>"}[opcode]
        return f"{a} {operator} {b}"

    def commit_lines(self):
        """The success arm: scatters in program order, counters, closed
        forms for every live-out (header phis and the exit compare), the
        bulk profile delivery, and the jump to the exit block. Body
        values need no materialization — the header is the only exiting
        block, so no body instruction dominates (or is visible in) any
        block outside the loop."""
        vec = self.vec
        out = []
        store_index = 0
        for access in vec.accesses:
            if not access.is_write:
                continue
            value = self.expr(access.instruction.value)
            out.append(
                f"_vput(_space, _vsb{store_index}, {_c(access.stride)}, "
                f"_vn, {value})"
            )
            store_index += 1
        out.append(
            f"machine.vec_runs[{vec.loop_id!r}] = "
            f"machine.vec_runs.get({vec.loop_id!r}, 0) + 1"
        )
        out.extend(self.epilogue_lines())
        return out

    def epilogue_lines(self, event_bases=None):
        """Loop-exit closed forms shared by the vector and parallel commit
        arms: header-phi final values, the exit compare, the bulk profile
        delivery (with ``event_bases`` overriding the per-access base
        expressions when the body ran out-of-process), the fuel charge,
        and the jump to the exit block."""
        em = self.em
        vec = self.vec
        out = []
        for phi in vec.phis:
            step = vec.phi_steps[id(phi)]
            start = em.expr(phi.incoming_for_block(vec.preheader))
            register = em.reg[id(phi)]
            if step == 0:
                out.append(f"{register} = {start}")
            elif phi.type.is_pointer:
                out.append(f"{register} = {start} + {_c(step)} * _vn")
            else:
                out.append(
                    f"{register} = _vw({start} + {_c(step)} * _vn)"
                )
        icmp = vec.exit_cond
        operator = _ICMP[icmp.predicate]
        out.append(
            f"{em.reg[id(icmp)]} = 1 if {em.expr(icmp.lhs)} {operator} "
            f"{em.expr(icmp.rhs)} else 0"
        )
        if em.instrumented:
            tuples = ", ".join(
                f"({access.is_write!r}, {access.offset}, "
                f"{event_bases[index] if event_bases is not None else self._event_base(access)}, "
                f"{_c(access.stride)})"
                for index, access in enumerate(vec.accesses)
            )
            out.append(
                f"_rt.vec_loop({vec.loop_id!r}, _cost, _vn, "
                f"{vec.iter_cost}, _vt, [{tuples}])"
            )
        out.append("_cost = _vt")
        out.extend(em._edge_lines(vec.header, vec.exit_block,
                                  skip_actions=True))
        out.append(f"_L = {em.labels[id(vec.exit_block)]}")
        out.append("continue")
        return out

    def _event_base(self, access):
        if access.is_write:
            index = sum(
                1 for other in self.vec.accesses
                if other.is_write and other.offset < access.offset
            )
            return f"_vsb{index}"
        return f"_vbase({self.expr(access.instruction.pointer)})"


def emit_trip_prologue(emitter, vec_plan):
    """``(lines, guard)`` binding ``_vn`` for one kernel section.

    A static trip count binds ``_vn`` to a literal (guard 0). A runtime
    trip count computes ``_vn`` from the live start/bound registers and
    opens a guard taken only when the count is in kernel range *and* the
    IV's final value still fits i32 — the no-wrap proof that makes the
    closed forms exact (see :func:`_trip_runtime`). Shared by the vector
    section and the parallel tier's DOALL/TLS sections."""
    lines = []
    guard = 0
    if vec_plan.trip is not None:
        lines.append((1, f"_vn = {vec_plan.trip}"))
    else:
        start, bound, step, inclusive = vec_plan.trip_runtime
        start_expr = emitter.expr(start)
        bound_expr = emitter.expr(bound)
        magnitude = abs(step)
        delta = (f"({bound_expr} - {start_expr})" if step > 0
                 else f"({start_expr} - {bound_expr})")
        if inclusive:
            trip_expr = f"{delta} // {magnitude} + 1"
        elif magnitude == 1:
            trip_expr = delta
        else:
            trip_expr = f"({delta} + {magnitude - 1}) // {magnitude}"
        lines.append((1, f"_vn = {trip_expr}"))
        lines.append((1, f"if 1 <= _vn <= {_MAX_VEC_TRIP} and "
                         f"-2147483648 <= {start_expr} + {_c(step)} * _vn "
                         f"< 2147483648:"))
        guard = 1
    return lines, guard


def emit_vec_section(emitter, vec_plan):
    """Source lines (indent, text) for one vector section, planted at the
    top of the preheader's Br arm; indentation is relative to the arm
    body. Falling out of the guards/``except`` continues into the
    untouched scalar edge code, so every bail is a plain slow path."""
    section = _VecEmitter(emitter, vec_plan)
    if vec_plan.accesses:
        emitter.needs.add("space")
    lines, guard = emit_trip_prologue(emitter, vec_plan)
    lines.append((guard + 1, f"_vt = _cost + _vn * {vec_plan.iter_cost} "
                             f"+ {vec_plan.header_cost}"))
    lines.append((guard + 1, "if _vt <= _fuel:"))
    lines.append((guard + 2, "try:"))
    lines.append((guard + 3, "with _np.errstate(all='ignore'):"))
    lines.append((guard + 4, "_vi = _np.arange(_vn, dtype=_np.int64)"))
    lines.append((guard + 4, "_vgf = []; _vgi = []"))
    for text in section.phi_lines():
        lines.append((guard + 4, text))
    for text in section.body_lines():
        lines.append((guard + 4, text))
    lines.append((guard + 2, "except (_VBail, OverflowError, ValueError, "
                             "ZeroDivisionError, TypeError):"))
    lines.append((guard + 3,
                  f"machine.vec_bailouts[{vec_plan.loop_id!r}] = "
                  f"machine.vec_bailouts.get({vec_plan.loop_id!r}, 0) + 1"))
    lines.append((guard + 2, "else:"))
    for text in section.commit_lines():
        lines.append((guard + 3, text))
    return lines
