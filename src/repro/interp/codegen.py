"""Block-template JIT: lower verified IR functions to Python source.

Instead of interpreting pre-compiled closures per IR op, each function is
lowered once to a Python function whose body is straight-line code:

* every SSA value becomes a local variable (``r0``, ``r1``, ...);
* ``_wrap32`` arithmetic, comparisons, and GEP address math are inlined as
  expressions (the 32-bit wrap is the branch-free
  ``((x + 2**31) & (2**32 - 1)) - 2**31``);
* phis are resolved by parallel copies emitted on each predecessor edge;
* control flow is a ``while True`` over integer block labels dispatched by
  an ``if``/``elif`` chain.

Two variants exist per function. The *uninstrumented* one has zero
callback overhead — no runtime, no timestamps, just the fuel charge per
block. The *instrumented* one batches memory and register-LCD events of
each call-free block into flat lists flushed once per block through
:meth:`ProfilingRuntime.deliver_block_events`; blocks containing calls
emit events immediately (callee events and call records interleave), which
is exactly the closure backend's batching rule.

The dynamic cost lives in a local ``_cost`` synced to ``machine.cost`` in
a ``try``/``finally`` and around every call, so fuel accounting and every
event timestamp match the closure backend bit for bit (enforced by
``tests/test_differential_backends.py``).

With ``vectorize=True`` (the ``vec`` backend) the emitter additionally
consults :mod:`repro.interp.veccodegen`: innermost loops proved
STATIC_DOALL with affine accesses and an exactly-known trip count get a
*vector section* planted on the preheader's branch — the whole loop runs
as NumPy array operations with profile events derived in closed form,
and any runtime guard failure falls through to the unmodified scalar
path for that invocation.

Generated sources are cached in-process (keyed by IR text + plan + flags)
and on disk via :class:`repro.runtime.profile_store.CodeCache` with a
tier tag (``jit`` vs ``vec``); set ``REPRO_JIT_DUMP=<dir>`` to dump each
generated source for debugging. Anything the emitter cannot lower raises
:class:`CodegenUnsupported` and the interpreter silently falls back to
the closure backend for that one function.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib

from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.printer import print_function
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable
from .interpreter import (
    _alloc_zero_is_float,
    signed_div,
    signed_rem,
    unsigned_div,
    unsigned_rem,
)
from .intrinsics import INTRINSICS
from .parexec import (
    PAR_VERSION,
    emit_par_doall_section,
    emit_tls_section,
    plan_tls_loops,
)
from .veccodegen import (
    VEC_VERSION,
    emit_vec_section,
    plan_vector_loops,
    vec_available,
    vec_namespace,
)

#: Bump whenever the generated-source template changes; part of the code
#: cache key, so stale cached sources are never reused.
CODEGEN_VERSION = 2


class CodegenUnsupported(Exception):
    """The function uses a construct the template JIT cannot lower; the
    caller falls back to the closure backend for that function."""


_ICMP = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
_FCMP = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}

# Branch-free 32-bit two's-complement wrap of an expression known to be an
# int: ((x + 2**31) & (2**32 - 1)) - 2**31  ==  _wrap32(x)  for all ints.
_WRAP_ADD = "(({a} + {b} + 2147483648) & 4294967295) - 2147483648"
_WRAP_SUB = "(({a} - {b} + 2147483648) & 4294967295) - 2147483648"
_WRAP_MUL = "(({a} * {b} + 2147483648) & 4294967295) - 2147483648"


def _intrinsic_signature():
    """Costs baked into generated sources; part of the cache key."""
    return ";".join(f"{name}:{info.cost}" for name, info in sorted(INTRINSICS.items()))


def _canonical_plan(function, plan):
    """Serialize a :class:`FunctionInstrumentation` plan with id()-keyed
    structures mapped to stable labels (args ``aN``, blocks ``bN``,
    instructions ``vB.I``) so identical plans on identical IR hash equally
    across processes."""
    if plan is None:
        return "none"
    labels = {}
    for index, argument in enumerate(function.arguments):
        labels[id(argument)] = f"a{index}"
    for b_index, block in enumerate(function.blocks):
        labels[id(block)] = f"b{b_index}"
        for i_index, instruction in enumerate(block.instructions):
            labels[id(instruction)] = f"v{b_index}.{i_index}"

    def ref(value):
        if isinstance(value, ConstantInt):
            return f"ci:{value.value}"
        if isinstance(value, ConstantFloat):
            return f"cf:{value.value!r}"
        if isinstance(value, GlobalVariable):
            return f"g:{value.name}"
        label = labels.get(id(value))
        if label is None:
            raise CodegenUnsupported(f"unlabelable plan reference {value!r}")
        return label

    try:
        data = {
            "edges": sorted(
                (f"{labels[p]}->{labels[s]}", list(actions))
                for (p, s), actions in plan.edge_actions.items()
            ),
            "latch": sorted(
                (
                    f"{labels[p]}->{labels[s]}",
                    [(phi_key, ref(value)) for phi_key, value in specs],
                )
                for (p, s), specs in plan.latch_values.items()
            ),
            "defs": sorted(
                (labels[key], list(entries))
                for key, entries in plan.def_hooks.items()
            ),
            "uses": sorted(
                (labels[key], list(entries))
                for key, entries in plan.use_hooks.items()
            ),
            "calls": sorted(
                (labels[key], site) for key, site in plan.call_sites.items()
            ),
            "call_uses": sorted(
                (labels[key], list(sites))
                for key, sites in plan.call_use_hooks.items()
            ),
        }
    except KeyError as error:
        raise CodegenUnsupported(f"plan references unknown entity: {error}")
    return json.dumps(data, sort_keys=True, default=repr)


def jit_cache_key(function, plan, instrumented, vectorize=False,
                  parallel=False):
    """Content hash identifying one generated source: codegen version,
    intrinsic cost table, variant, tier (scalar vs vector, with the
    vector template version), pipeline fingerprint, instrumentation plan,
    and the printed IR of the function.

    The pipeline fingerprint matters even though the IR is hashed: two
    pipeline configurations can print byte-identical IR for one function
    while other compiled artifacts keyed alongside it (vector plans,
    static metadata) differ — and a pipeline version bump must invalidate
    everything it ever produced. Functions outside any module (unit-test
    fixtures) hash the ``unpipelined`` token."""
    module = getattr(function, "module", None)
    fingerprint = getattr(module, "pipeline_fingerprint", None) \
        if module is not None else None
    if parallel:
        tier = f"p{PAR_VERSION}v{VEC_VERSION}"
    elif vectorize:
        tier = f"v{VEC_VERSION}"
    else:
        tier = "nv"
    tag = (
        f"{CODEGEN_VERSION}|{int(bool(instrumented))}|{tier}|"
        f"{fingerprint or 'unpipelined'}|"
        f"{_intrinsic_signature()}|"
    )
    plan_text = _canonical_plan(function, plan) if instrumented else "none"
    digest = hashlib.sha256()
    digest.update(tag.encode("utf-8"))
    digest.update(plan_text.encode("utf-8"))
    digest.update(b"|")
    digest.update(print_function(function).encode("utf-8"))
    return digest.hexdigest()


class _Emitter:
    """Builds the generated source for one (function, plan, variant)."""

    def __init__(self, function, plan, instrumented, vectorize=False,
                 parallel=False):
        self.function = function
        # The uninstrumented variant ignores the plan entirely: every hook
        # in the closure backend is a no-op without a runtime attached.
        self.plan = plan if instrumented else None
        self.instrumented = instrumented
        self.vectorize = vectorize
        self.parallel = parallel
        self.vec_loops = {}     # id(preheader block) -> VecLoopPlan
        self.vec_decisions = []
        self.tls_loops = {}     # id(preheader block) -> TlsLoopPlan
        self.tls_decisions = []
        self.labels = {}        # id(block) -> int label
        self.reg = {}           # id(value) -> local name
        self.batch = {}         # id(block) -> bool
        self.flush = {}         # id(block) -> bool
        self.globals_used = {}  # global name -> prologue local
        self.funcs_used = {}    # function name -> prologue local
        self.intr_used = {}     # intrinsic name -> prologue local
        self.needs = set()      # prologue helpers actually referenced

    # -- naming -----------------------------------------------------------------

    def _global_local(self, name):
        local = self.globals_used.get(name)
        if local is None:
            local = f"_gb{len(self.globals_used)}"
            self.globals_used[name] = local
        return local

    def _func_local(self, name):
        local = self.funcs_used.get(name)
        if local is None:
            local = f"_fn{len(self.funcs_used)}"
            self.funcs_used[name] = local
        return local

    def _intrinsic_local(self, name):
        local = self.intr_used.get(name)
        if local is None:
            local = f"_im{len(self.intr_used)}"
            self.intr_used[name] = local
        return local

    def expr(self, value):
        """Atomic expression for an operand: a local, or a literal."""
        if isinstance(value, ConstantInt):
            text = repr(value.value)
            return f"({text})" if value.value < 0 else text
        if isinstance(value, ConstantFloat):
            number = value.value
            if not math.isfinite(number):
                raise CodegenUnsupported(f"non-finite float constant {number!r}")
            text = repr(number)
            return f"({text})" if number < 0 else text
        if isinstance(value, GlobalVariable):
            return self._global_local(value.name)
        name = self.reg.get(id(value))
        if name is None:
            raise CodegenUnsupported(f"unsupported operand {value!r}")
        return name

    # -- top level --------------------------------------------------------------

    def generate(self):
        function = self.function
        blocks = function.blocks
        if not blocks:
            raise CodegenUnsupported(f"@{function.name} has no body")
        plan = self.plan

        for index, block in enumerate(blocks):
            self.labels[id(block)] = index
        for index, argument in enumerate(function.arguments):
            self.reg[id(argument)] = f"r{index}"
        counter = len(function.arguments)
        for block in blocks:
            for instruction in block.instructions:
                if not instruction.type.is_void:
                    self.reg[id(instruction)] = f"r{counter}"
                    counter += 1

        if self.vectorize:
            self.vec_loops, self.vec_decisions = plan_vector_loops(
                function, self.plan, self.instrumented
            )
        if self.parallel and not self.instrumented:
            # TLS sections exist only in the plain variant: speculative
            # chunks cannot reproduce per-iteration profile events, and
            # the scalar fallback must stay the bit-exact reference.
            self.tls_loops, self.tls_decisions = plan_tls_loops(
                function, self.vec_loops
            )

        for block in blocks:
            if not self.instrumented:
                self.batch[id(block)] = False
                self.flush[id(block)] = False
                continue
            batch = not any(
                isinstance(i, Call)
                or (plan is not None and plan.call_use_hooks.get(id(i)))
                for i in block.instructions
            )
            self.batch[id(block)] = batch
            self.flush[id(block)] = batch and self._block_has_events(block)

        body = []  # (indent, text) relative to the dispatch arm
        for index, block in enumerate(blocks):
            arm = "if" if index == 0 else "elif"
            body.append((0, f"{arm} _L == {index}:"))
            body.extend(self._block_lines(block))

        return self._assemble(body)

    def _block_has_events(self, block):
        """Whether a batched block (or its incoming phi hooks) ever appends
        to the event lists, i.e. whether it needs a flush."""
        plan = self.plan
        for instruction in block.instructions:
            if isinstance(instruction, (Load, Store)):
                return True
            if plan is not None and (
                plan.def_hooks.get(id(instruction))
                or plan.use_hooks.get(id(instruction))
            ):
                return True
        return False

    def _assemble(self, body):
        function = self.function
        lines = [(0, "def _jit_run(machine, _args):")]
        if "space" in self.needs:
            lines.append((1, "_space = machine.space"))
        if "load" in self.needs:
            lines.append((1, "_load = _space.load"))
        if "store" in self.needs:
            lines.append((1, "_store = _space.store"))
        if "alloc" in self.needs:
            lines.append((1, "_alloc = _space.allocate"))
        lines.append((1, "_fuel = machine.fuel"))
        if self.instrumented:
            lines.append((1, "_rt = machine.runtime"))
        if "marks" in self.needs:
            lines.append((1, "_marks = _rt.current_marks"))
        if "deliver" in self.needs:
            lines.append((1, "_deliver = _rt.deliver_block_events"))
            lines.append((1, "_mem = []"))
            lines.append((1, "_lcd = []"))
        for name, local in self.globals_used.items():
            lines.append((1, f"{local} = machine.global_bases[{name!r}]"))
        for name, local in self.funcs_used.items():
            lines.append((1, f"{local} = machine.module.get_function({name!r})"))
        for name, local in self.intr_used.items():
            lines.append(
                (1, f"{local} = machine.module.get_function({name!r})"
                    ".intrinsic.implementation")
            )
        for index in range(len(function.arguments)):
            lines.append((1, f"r{index} = _args[{index}]"))
        lines.append((1, "_cost = machine.cost"))
        lines.append((1, "try:"))
        entry_label = self.labels[id(function.entry_block)]
        lines.append((2, f"_L = {entry_label}"))
        lines.append((2, "while True:"))
        for indent, text in body:
            lines.append((3 + indent, text))
        lines.append((1, "finally:"))
        lines.append((2, "machine.cost = _cost"))
        return "\n".join("    " * indent + text for indent, text in lines) + "\n"

    # -- blocks -----------------------------------------------------------------

    def _block_lines(self, block):
        """Lines for one dispatch arm, indents relative to the arm body."""
        out = []
        cost = len(block.instructions)
        if self.instrumented:
            out.append((1, "_base = _cost"))
            out.append((1, f"_cost = _base + {cost}"))
        else:
            out.append((1, f"_cost += {cost}"))
        out.append((1, "if _cost > _fuel: raise _FuelExhausted(_fuel)"))

        batch = self.batch[id(block)]
        terminator = None
        terminator_position = None
        for position, instruction in enumerate(block.instructions):
            if isinstance(instruction, Phi):
                continue  # resolved on predecessor edges; still costs a slot
            if instruction.is_terminator:
                terminator = instruction
                terminator_position = position
                continue
            for text in self._op_lines(instruction, position, batch):
                out.append((1, text))

        if terminator is None:
            raise CodegenUnsupported(
                f"block {block.name} in @{self.function.name} lacks a terminator"
            )

        # LCD-use hooks on the terminator fire at base + position.
        plan = self.plan
        if plan is not None:
            for loop_id, phi_key in plan.use_hooks.get(id(terminator), ()):
                out.append((1, self._lcd_line(
                    False, loop_id, phi_key, f"_base + {terminator_position}", batch
                )))

        if self.flush[id(block)]:
            self.needs.add("deliver")
            out.append((1, "_deliver(_mem, _lcd)"))
            out.append((1, "del _mem[:]"))
            out.append((1, "del _lcd[:]"))

        out.extend(self._terminator_lines(block, terminator))
        return out

    # -- terminators and edges ---------------------------------------------------

    def _terminator_lines(self, block, terminator):
        out = []
        if isinstance(terminator, Ret):
            if terminator.value is None:
                out.append((1, "return None"))
            else:
                out.append((1, f"return {self.expr(terminator.value)}"))
            return out
        if isinstance(terminator, Br):
            target = terminator.target
            vec = self.vec_loops.get(id(block))
            if vec is not None and target is vec.header:
                # Kernel fast path first; falling through it lands on the
                # unmodified scalar entry edge below. The parallel tier
                # wraps the vector section behind a pool dispatch.
                if self.parallel:
                    out.extend(emit_par_doall_section(self, vec))
                else:
                    out.extend(emit_vec_section(self, vec))
            elif self.parallel:
                tls = self.tls_loops.get(id(block))
                if tls is not None and tls.header is target:
                    out.extend(emit_tls_section(self, tls))
            for text in self._edge_lines(block, target):
                out.append((1, text))
            out.append((1, f"_L = {self.labels[id(target)]}"))
            out.append((1, "continue"))
            return out
        if isinstance(terminator, CondBr):
            condition = self.expr(terminator.condition)
            then_block, else_block = terminator.then_block, terminator.else_block
            then_code = self._edge_lines(block, then_block)
            else_code = self._edge_lines(block, else_block)
            then_label = self.labels[id(then_block)]
            else_label = self.labels[id(else_block)]
            if not then_code and not else_code:
                out.append(
                    (1, f"_L = {then_label} if {condition} else {else_label}")
                )
                out.append((1, "continue"))
                return out
            out.append((1, f"if {condition}:"))
            for text in then_code:
                out.append((2, text))
            out.append((2, f"_L = {then_label}"))
            out.append((1, "else:"))
            for text in else_code:
                out.append((2, text))
            out.append((2, f"_L = {else_label}"))
            out.append((1, "continue"))
            return out
        raise CodegenUnsupported(f"unknown terminator {terminator!r}")

    def _edge_lines(self, pred, succ, skip_actions=False):
        """Code run when control flows pred -> succ, in the closure
        backend's order: edge actions at the current cost, then the
        parallel phi copies, then the phi def/use hooks.
        ``skip_actions`` serves the vector sections, whose bulk delivery
        has already produced the edge's loop events."""
        out = []
        plan = self.plan
        edge_key = (id(pred), id(succ))
        if plan is not None and not skip_actions:
            actions = plan.edge_actions.get(edge_key)
            if actions:
                for kind, loop_id in actions:
                    if kind == "iter":
                        specs = plan.latch_values.get(edge_key, ())
                        values = ", ".join(
                            f"({phi_key!r}, {self.expr(value)})"
                            for phi_key, value in specs
                        )
                        out.append(
                            f"_rt.loop_iter({loop_id!r}, _cost, [{values}])"
                        )
                    elif kind == "enter":
                        out.append(f"_rt.loop_enter({loop_id!r}, _cost)")
                    else:
                        out.append(f"_rt.loop_exit({loop_id!r}, _cost)")

        phis = [i for i in succ.instructions if isinstance(i, Phi)]
        if phis:
            moves = []
            for phi in phis:
                for value, incoming_pred in phi.incoming():
                    if incoming_pred is pred:
                        moves.append((self.reg[id(phi)], self.expr(value)))
                        break
                else:
                    raise CodegenUnsupported(
                        f"phi {phi!r} lacks an incoming value for {pred.name}"
                    )
            if len(moves) == 1:
                out.append(f"{moves[0][0]} = {moves[0][1]}")
            else:
                dsts = ", ".join(dst for dst, _ in moves)
                srcs = ", ".join(src for _, src in moves)
                out.append(f"{dsts} = {srcs}")
            if plan is not None:
                succ_batch = self.batch[id(succ)]
                for phi in phis:
                    for loop_id, phi_key in plan.def_hooks.get(id(phi), ()):
                        out.append(self._lcd_line(
                            True, loop_id, phi_key, "_cost", succ_batch
                        ))
                    for loop_id, phi_key in plan.use_hooks.get(id(phi), ()):
                        out.append(self._lcd_line(
                            False, loop_id, phi_key, "_cost", succ_batch
                        ))
        return out

    def _lcd_line(self, is_def, loop_id, phi_key, ts_expr, batch):
        if batch:
            self.needs.add("deliver")
            return (
                f"_lcd.append(({is_def!r}, {loop_id!r}, {phi_key!r}, {ts_expr}))"
            )
        if is_def:
            return f"_rt.lcd_def({loop_id!r}, {phi_key!r}, {ts_expr})"
        return f"_rt.lcd_use({loop_id!r}, {phi_key!r}, {ts_expr})"

    # -- instructions -------------------------------------------------------------

    def _op_lines(self, instruction, position, batch):
        lines = []
        plan = self.plan
        if plan is not None:
            for site_id in plan.call_use_hooks.get(id(instruction), ()):
                # Result-use hooks fire before the consumer executes.
                lines.append(
                    f"_rt.call_result_use({site_id!r}, _base + {position})"
                )
        lines.extend(self._core_lines(instruction, position, batch))
        if plan is not None:
            for loop_id, phi_key in plan.def_hooks.get(id(instruction), ()):
                lines.append(self._lcd_line(
                    True, loop_id, phi_key, f"_base + {position}", batch
                ))
            for loop_id, phi_key in plan.use_hooks.get(id(instruction), ()):
                lines.append(self._lcd_line(
                    False, loop_id, phi_key, f"_base + {position}", batch
                ))
        return lines

    def _core_lines(self, instruction, position, batch):
        expr = self.expr
        if isinstance(instruction, BinaryOp):
            dst = self.reg[id(instruction)]
            return self._binop_lines(instruction, dst)

        if isinstance(instruction, ICmp):
            dst = self.reg[id(instruction)]
            operator = _ICMP.get(instruction.predicate)
            if operator is None:
                raise CodegenUnsupported(f"icmp {instruction.predicate}")
            return [
                f"{dst} = 1 if {expr(instruction.lhs)} {operator} "
                f"{expr(instruction.rhs)} else 0"
            ]

        if isinstance(instruction, FCmp):
            dst = self.reg[id(instruction)]
            operator = _FCMP.get(instruction.predicate)
            if operator is None:
                raise CodegenUnsupported(f"fcmp {instruction.predicate}")
            return [
                f"{dst} = 1 if {expr(instruction.lhs)} {operator} "
                f"{expr(instruction.rhs)} else 0"
            ]

        if isinstance(instruction, Alloca):
            dst = self.reg[id(instruction)]
            size = instruction.allocated_type.size_in_slots()
            zero = "0.0" if _alloc_zero_is_float(instruction.allocated_type) else "0"
            self.needs.update(("space", "alloc"))
            if self.instrumented:
                self.needs.add("marks")
                return [f"{dst} = _alloc({size}, {zero}, _marks())"]
            return [f"{dst} = _alloc({size}, {zero}, None)"]

        if isinstance(instruction, Load):
            dst = self.reg[id(instruction)]
            pointer = expr(instruction.pointer)
            self.needs.update(("space", "load"))
            lines = [f"{dst} = _load({pointer})"]
            if self.instrumented:
                if batch:
                    self.needs.add("deliver")
                    lines.append(
                        f"_mem.append((False, {pointer}, _base + {position}))"
                    )
                else:
                    lines.append(f"_rt.mem_read({pointer}, _base + {position})")
            return lines

        if isinstance(instruction, Store):
            pointer = expr(instruction.pointer)
            value = expr(instruction.value)
            self.needs.update(("space", "store"))
            lines = [f"_store({pointer}, {value})"]
            if self.instrumented:
                if batch:
                    self.needs.add("deliver")
                    lines.append(
                        f"_mem.append((True, {pointer}, _base + {position}))"
                    )
                else:
                    lines.append(f"_rt.mem_write({pointer}, _base + {position})")
            return lines

        if isinstance(instruction, GEP):
            dst = self.reg[id(instruction)]
            terms = [expr(instruction.pointer)]
            element = instruction.pointer.type.pointee
            for index in instruction.indices:
                if element.is_array:
                    scale = element.element.size_in_slots()
                    element = element.element
                else:
                    scale = element.size_in_slots()
                index_expr = expr(index)
                terms.append(
                    index_expr if scale == 1 else f"{scale} * {index_expr}"
                )
            return [f"{dst} = " + " + ".join(terms)]

        if isinstance(instruction, Call):
            return self._call_lines(instruction)

        if isinstance(instruction, Select):
            dst = self.reg[id(instruction)]
            return [
                f"{dst} = {expr(instruction.true_value)} "
                f"if {expr(instruction.condition)} "
                f"else {expr(instruction.false_value)}"
            ]

        if isinstance(instruction, Cast):
            dst = self.reg[id(instruction)]
            value = expr(instruction.value)
            opcode = instruction.opcode
            if opcode == "sitofp":
                return [f"{dst} = float({value})"]
            if opcode == "fptosi":
                return [
                    f"{dst} = ((int({value}) + 2147483648) & 4294967295)"
                    " - 2147483648"
                ]
            if opcode == "zext":
                return [f"{dst} = {value}"]
            if opcode == "trunc":
                width = instruction.type.width
                if width == 1:
                    return [f"{dst} = {value} & 1"]
                mask = (1 << width) - 1
                half = 1 << (width - 1)
                span = 1 << width
                return [
                    f"{dst} = {value} & {mask}",
                    f"if {dst} >= {half}: {dst} -= {span}",
                ]
            raise CodegenUnsupported(f"cast opcode {opcode}")

        raise CodegenUnsupported(f"cannot lower {instruction!r}")

    def _binop_lines(self, instruction, dst):
        a = self.expr(instruction.lhs)
        b = self.expr(instruction.rhs)
        opcode = instruction.opcode
        type_ = instruction.type

        if opcode in ("sdiv", "srem", "udiv", "urem"):
            helper = {"sdiv": "_sdiv", "srem": "_srem",
                      "udiv": "_udiv", "urem": "_urem"}[opcode]
            return [f"{dst} = {helper}({a}, {b}, {type_.width})"]

        if opcode == "fdiv":
            return [
                f"if {b} == 0.0: raise _TrapError('float division by zero')",
                f"{dst} = {a} / {b}",
            ]
        if opcode in ("fadd", "fsub", "fmul"):
            operator = {"fadd": "+", "fsub": "-", "fmul": "*"}[opcode]
            return [f"{dst} = {a} {operator} {b}"]

        if not type_.is_integer:
            raise CodegenUnsupported(f"binary opcode {opcode} on {type_!r}")

        if type_.width == 32:
            if opcode == "add":
                return [f"{dst} = " + _WRAP_ADD.format(a=a, b=b)]
            if opcode == "sub":
                return [f"{dst} = " + _WRAP_SUB.format(a=a, b=b)]
            if opcode == "mul":
                return [f"{dst} = " + _WRAP_MUL.format(a=a, b=b)]
            if opcode in ("and", "or", "xor"):
                operator = {"and": "&", "or": "|", "xor": "^"}[opcode]
                return [f"{dst} = {a} {operator} {b}"]
            if opcode == "shl":
                return [
                    f"{dst} = ((({a} << ({b} & 31)) + 2147483648)"
                    " & 4294967295) - 2147483648"
                ]
            if opcode == "ashr":
                return [f"{dst} = {a} >> ({b} & 31)"]
            if opcode == "lshr":
                return [
                    f"{dst} = (((({a} & 4294967295) >> ({b} & 31))"
                    " + 2147483648) & 4294967295) - 2147483648"
                ]
            raise CodegenUnsupported(f"binary opcode {opcode}")

        # i1 (and any other non-32 width): plain Python semantics, same as
        # the closure backend's non-32 table.
        width = type_.width
        if opcode in ("add", "sub", "mul", "and", "or", "xor", "shl", "ashr"):
            operator = {"add": "+", "sub": "-", "mul": "*", "and": "&",
                        "or": "|", "xor": "^", "shl": "<<", "ashr": ">>"}[opcode]
            return [f"{dst} = {a} {operator} {b}"]
        if opcode == "lshr":
            mask = (1 << width) - 1
            return [f"{dst} = ({a} & {mask}) >> ({b} & {width - 1})"]
        raise CodegenUnsupported(f"binary opcode {opcode} at width {width}")

    def _call_lines(self, instruction):
        callee = instruction.callee
        args = ", ".join(self.expr(a) for a in instruction.args)
        dst = self.reg.get(id(instruction))
        assign = f"{dst} = " if dst is not None else ""
        lines = []

        if callee.is_intrinsic:
            info = callee.intrinsic
            extra = max(0, info.cost - 1)
            impl = self._intrinsic_local(callee.name)
            if extra:
                lines.append(f"_cost += {extra}")
                lines.append("if _cost > _fuel: raise _FuelExhausted(_fuel)")
            # Intrinsic implementations read machine.cost for their own
            # event timestamps (memcpy & co.): sync the local around them.
            lines.append("machine.cost = _cost")
            lines.append(f"{assign}{impl}(machine, [{args}])")
            lines.append("_cost = machine.cost")
            return lines

        plan = self.plan
        site_id = plan.call_sites.get(id(instruction)) if plan is not None else None
        function_local = self._func_local(callee.name)
        lines.append("machine.cost = _cost")
        if site_id is not None:
            lines.append(f"_rt.call_start({site_id!r}, _cost)")
        lines.append(f"{assign}machine._call({function_local}, [{args}])")
        lines.append("_cost = machine.cost")
        if site_id is not None:
            lines.append(f"_rt.call_end({site_id!r}, _cost)")
        return lines


def generate_source(function, plan, instrumented, vectorize=False,
                    parallel=False):
    """Emit the Python source of one variant of ``function``."""
    return _Emitter(function, plan, instrumented, vectorize,
                    parallel).generate()


# -- compilation and entry points -----------------------------------------------

# The generated function resolves every per-instance value (globals table,
# callees, runtime, fuel) from ``machine`` in its prologue, so one function
# object is shared by every Interpreter whose (IR, plan, variant) matches.
# Bounded LRU (insertion order + move-to-end on hit): long-lived processes
# compiling many modules (sweeps, fuzzing) must not grow without limit.
_CODE_MEMO = {}  # key -> (callable, source), LRU order
_CODE_MEMO_CAP_ENV = "REPRO_CODE_MEMO_CAP"
_CODE_MEMO_CAP_DEFAULT = 256
_CODE_MEMO_STATS = {"evictions": 0}


def _code_memo_cap():
    raw = os.environ.get(_CODE_MEMO_CAP_ENV)
    if not raw:
        return _CODE_MEMO_CAP_DEFAULT
    try:
        return max(1, int(raw))
    except ValueError:
        return _CODE_MEMO_CAP_DEFAULT


def codegen_memo_stats():
    """Observability for ``repro cache stats``."""
    return {
        "memo_entries": len(_CODE_MEMO),
        "memo_cap": _code_memo_cap(),
        "memo_evictions": _CODE_MEMO_STATS["evictions"],
    }

_NAMESPACE_TEMPLATE = None


def _base_namespace():
    """Globals for generated code: exceptions and the division helpers
    shared verbatim with the closure backend."""
    global _NAMESPACE_TEMPLATE
    if _NAMESPACE_TEMPLATE is None:
        from ..errors import FuelExhausted, TrapError

        _NAMESPACE_TEMPLATE = {
            "_FuelExhausted": FuelExhausted,
            "_TrapError": TrapError,
            "_sdiv": signed_div,
            "_srem": signed_rem,
            "_udiv": unsigned_div,
            "_urem": unsigned_rem,
        }
        _NAMESPACE_TEMPLATE.update(vec_namespace())
    return dict(_NAMESPACE_TEMPLATE)


def _dump_source(function, instrumented, key, source):
    directory = os.environ.get("REPRO_JIT_DUMP")
    if not directory:
        return
    variant = "instr" if instrumented else "plain"
    path = pathlib.Path(directory)
    try:
        path.mkdir(parents=True, exist_ok=True)
        name = f"{function.name}.{variant}.{key[:12]}.py"
        (path / name).write_text(source)
    except OSError:
        pass  # debugging aid only; never break a run


def jit_entry(function, plan, instrumented, code_cache=None, vectorize=False,
              parallel=False):
    """Return the compiled entry ``fn(machine, args) -> result`` for one
    variant of ``function``, consulting the in-process memo and the
    persistent code cache before generating source.

    Raises :class:`CodegenUnsupported` when the function cannot be
    lowered; the caller is expected to fall back to the closure backend.
    """
    # A vector-tagged source must never be produced (or reused) in an
    # environment without NumPy: normalize the tier before keying. The
    # parallel tier builds on the vector planner, so it degrades the same
    # way.
    vectorize = bool(vectorize) and vec_available()
    parallel = bool(parallel) and vectorize
    key = jit_cache_key(function, plan, instrumented, vectorize, parallel)
    memo = _CODE_MEMO.get(key)
    if memo is not None:
        _CODE_MEMO[key] = _CODE_MEMO.pop(key)  # LRU touch
        _dump_source(function, instrumented, key, memo[1])
        return memo[0]

    if code_cache is None:
        from ..runtime.profile_store import default_code_cache

        code_cache = default_code_cache()

    source = code_cache.load(key) if code_cache is not None else None
    if source is None:
        source = generate_source(function, plan, instrumented, vectorize,
                                 parallel)
        if code_cache is not None:
            if parallel:
                tier = "par"
            elif vectorize:
                tier = "vec"
            else:
                tier = "jit"
            code_cache.store(
                key,
                source,
                meta={
                    "function": function.name,
                    "variant": "instr" if instrumented else "plain",
                    "tier": tier,
                    "codegen_version": CODEGEN_VERSION,
                },
            )
    _dump_source(function, instrumented, key, source)

    namespace = _base_namespace()
    try:
        code = compile(source, f"<jit:{function.name}>", "exec")
        exec(code, namespace)
    except SyntaxError as error:  # pragma: no cover - emitter bug guard
        raise CodegenUnsupported(f"generated source failed to compile: {error}")
    entry = namespace["_jit_run"]
    while len(_CODE_MEMO) >= _code_memo_cap():
        _CODE_MEMO.pop(next(iter(_CODE_MEMO)))
        _CODE_MEMO_STATS["evictions"] += 1
    _CODE_MEMO[key] = (entry, source)
    return entry
