"""The IR interpreter — Loopapalooza's execution substrate.

Executes a verified module, counting **dynamic IR instructions** as the time
metric (the paper's §III-D choice: "LP always takes the dynamic LLVM IR
instruction count as the approximation of execution time"). Cost is charged
per basic block, matching the paper's hard-coded per-block callbacks; events
within a block carry ``block_base + position`` timestamps.

Three execution backends share this module's semantics:

* ``vec`` (the default) — the template JIT below, plus whole-loop NumPy
  kernels for loops the static dependence engine proves STATIC_DOALL
  (see :mod:`repro.interp.veccodegen`). Disabled with ``REPRO_NO_VEC=1``.
* ``jit`` — each function is lowered to straight-line Python source by
  :mod:`repro.interp.codegen`, ``compile()``d once, and executed as a
  native code object (see docs/internals.md, "Codegen backend").
* ``closure`` — each function is pre-compiled to closures once (operand
  access resolved to register indices), interpreted by a tight dispatch
  loop. Selected with ``backend="closure"`` or ``REPRO_NO_JIT=1``.

All backends charge fuel identically (per block, at block entry) and
produce byte-identical profiles (enforced by
``tests/test_differential_backends.py``). An optional
:class:`FunctionInstrumentation` plan per function injects the Loopapalooza
callbacks:

* loop entry / iteration / exit on the corresponding CFG edges,
* memory read/write events with timestamps,
* register-LCD tracking: the latch value of each tracked header phi, the
  timestamp of its producing definition, and the first in-iteration use.

The runtime object (see :mod:`repro.runtime.recorder`) receives these events
and builds the execution profile.
"""

from __future__ import annotations

import os
import sys

from ..errors import FuelExhausted, InterpError, TrapError
from ..ir.instructions import (
    GEP,
    Alloca,
    BinaryOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.values import ConstantFloat, ConstantInt, GlobalVariable
from .memory import AddressSpace

_MASK32 = 0xFFFFFFFF
_SIGN32 = 0x80000000


def _wrap32(value):
    value &= _MASK32
    return value - 0x100000000 if value & _SIGN32 else value


def _truthy_env(name):
    value = os.environ.get(name)
    return value is not None and value.strip().lower() in (
        "1", "true", "yes", "on"
    )


def backend_from_env():
    """The default execution backend: the vector-enabled JIT (``vec``)
    unless ``REPRO_NO_VEC`` is truthy (scalar ``jit``) or ``REPRO_NO_JIT``
    is truthy (``closure``); ``1``/``true``/``yes`` are truthy,
    ``0``/``false``/empty are not — same boolean-env contract as
    ``REPRO_NO_PROFILE_CACHE``. ``REPRO_PAR`` opts into the parallel
    execution tier (``par``), but the kill switches still win: the
    parallel tier builds on the vector tier."""
    if _truthy_env("REPRO_NO_JIT"):
        return "closure"
    if _truthy_env("REPRO_NO_VEC"):
        return "jit"
    if _truthy_env("REPRO_PAR"):
        return "par"
    return "vec"


# -- shared division semantics (both backends) ----------------------------------
#
# C/LLVM truncating division over two's-complement bit patterns. The one
# hardware edge the obvious Python spellings get wrong is INT_MIN / -1: the
# mathematical quotient 2**31 is unrepresentable, and 32-bit hardware wraps
# it back to INT_MIN (with a remainder of 0) rather than trapping.


def signed_div(a, b, width=32):
    """``sdiv``: truncate toward zero, wrap the quotient to ``width`` bits
    (so ``INT_MIN / -1 == INT_MIN``); a zero divisor traps."""
    if b == 0:
        raise TrapError("integer division by zero")
    q = -(-a // b) if (a < 0) != (b < 0) else a // b
    span = 1 << width
    q &= span - 1
    return q - span if q & (span >> 1) else q


def signed_rem(a, b, width=32):
    """``srem``: remainder of the truncating division (sign follows the
    dividend; ``INT_MIN % -1 == 0``); a zero divisor traps."""
    if b == 0:
        raise TrapError("integer remainder by zero")
    q = -(-a // b) if (a < 0) != (b < 0) else a // b
    return a - q * b


def unsigned_div(a, b, width=32):
    """``udiv`` over the unsigned views of the bit patterns."""
    mask = (1 << width) - 1
    divisor = b & mask
    if divisor == 0:
        raise TrapError("integer division by zero")
    value = (a & mask) // divisor
    return _wrap32(value) if width == 32 else value


def unsigned_rem(a, b, width=32):
    """``urem`` over the unsigned views of the bit patterns."""
    mask = (1 << width) - 1
    divisor = b & mask
    if divisor == 0:
        raise TrapError("integer remainder by zero")
    value = (a & mask) % divisor
    return _wrap32(value) if width == 32 else value


_INT_OPS = {
    "add": lambda a, b: _wrap32(a + b),
    "sub": lambda a, b: _wrap32(a - b),
    "mul": lambda a, b: _wrap32(a * b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: _wrap32(a << (b & 31)),
    "ashr": lambda a, b: a >> (b & 31),
    # Logical shift right: the unsigned view of the 32-bit pattern shifted,
    # reinterpreted as signed (matches LLVM's lshr on i32; shift amounts
    # masked to the width like shl/ashr above).
    "lshr": lambda a, b: _wrap32((a & _MASK32) >> (b & 31)),
}

# udiv/urem are handled as special cases alongside sdiv/srem (they trap on a
# zero divisor, so they cannot live in the pure-function table above).

_FLOAT_OPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
}

_ICMP_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_FCMP_OPS = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


class FunctionInstrumentation:
    """Per-function callback plan consumed by the compiler.

    Attributes (all keyed by object ids of IR entities):

    * ``edge_actions`` — ``{(id(pred), id(succ)): [(kind, loop_id), ...]}``
      with kind in ``'enter' | 'iter' | 'exit'``, fired in list order.
    * ``latch_values`` — ``{(id(latch), id(header)): [(phi_key, value_ref)]}``
      where ``value_ref`` is the IR value entering the phi from the latch;
      its run-time value is shipped with the ``loop_iter`` event.
    * ``def_hooks`` — ``{id(value): [(loop_id, phi_key)]}``: when the value is
      (re)computed, report the timestamp as the LCD's producer definition.
    * ``use_hooks`` — ``{id(instruction): [(loop_id, phi_key)]}``: when the
      instruction executes, report a consumer use of the LCD.
    * ``call_sites`` — ``{id(call): site_id}``: user calls tracked for the
      call/continuation TLS estimator (start/end events).
    * ``call_use_hooks`` — ``{id(instruction): [site_id]}``: the call's
      return value is consumed here (a continuation dependence).
    """

    def __init__(self):
        self.edge_actions = {}
        self.latch_values = {}
        self.def_hooks = {}
        self.use_hooks = {}
        # Function-call/continuation TLS (paper §I extension):
        self.call_sites = {}      # id(Call instr) -> site_id string
        self.call_use_hooks = {}  # id(instr) -> [site_id]: result consumed

    @property
    def is_empty(self):
        return not (
            self.edge_actions or self.latch_values
            or self.def_hooks or self.use_hooks or self.call_sites
        )


class _CompiledBlock:
    __slots__ = ("cost", "ops", "run", "phi_moves", "terminator")

    def __init__(self):
        self.cost = 0
        self.ops = []
        self.run = None       # fused closure over ops (None when no ops)
        self.phi_moves = {}   # id(pred) -> closure(machine, regs)
        self.terminator = None


def _fuse_ops(ops):
    """Fuse a block's op closures into one callable.

    The dispatch loop then makes a single call per block instead of
    iterating a list — small blocks (the common case after mem2reg) are
    specialized to straight-line calls with no loop at all.
    """
    if not ops:
        return None
    if len(ops) == 1:
        return ops[0]
    if len(ops) == 2:
        op0, op1 = ops

        def run2(machine, regs, base, op0=op0, op1=op1):
            op0(machine, regs, base)
            op1(machine, regs, base)
        return run2
    if len(ops) == 3:
        op0, op1, op2 = ops

        def run3(machine, regs, base, op0=op0, op1=op1, op2=op2):
            op0(machine, regs, base)
            op1(machine, regs, base)
            op2(machine, regs, base)
        return run3
    if len(ops) == 4:
        op0, op1, op2, op3 = ops

        def run4(machine, regs, base, op0=op0, op1=op1, op2=op2, op3=op3):
            op0(machine, regs, base)
            op1(machine, regs, base)
            op2(machine, regs, base)
            op3(machine, regs, base)
        return run4
    ops = tuple(ops)

    def run_many(machine, regs, base, ops=ops):
        for op in ops:
            op(machine, regs, base)
    return run_many


def _fn_binop(dst, lhs, rhs, fn):
    """``regs[dst] = fn(a, b)`` specialized on operand shapes (register
    index vs constant), eliminating the getter indirection per operand."""
    ls, rs = lhs.slot, rhs.slot
    if ls is not None and rs is not None:
        def op(machine, regs, base, dst=dst, ls=ls, rs=rs, fn=fn):
            regs[dst] = fn(regs[ls], regs[rs])
    elif ls is not None:
        rc = rhs.const

        def op(machine, regs, base, dst=dst, ls=ls, rc=rc, fn=fn):
            regs[dst] = fn(regs[ls], rc)
    elif rs is not None:
        lc = lhs.const

        def op(machine, regs, base, dst=dst, lc=lc, rs=rs, fn=fn):
            regs[dst] = fn(lc, regs[rs])
    else:
        lc, rc = lhs.const, rhs.const

        def op(machine, regs, base, dst=dst, lc=lc, rc=rc, fn=fn):
            regs[dst] = fn(lc, rc)
    return op


def _fn_cmp(dst, lhs, rhs, fn):
    """``regs[dst] = 1 if fn(a, b) else 0`` with the same operand-shape
    specialization as :func:`_fn_binop`."""
    ls, rs = lhs.slot, rhs.slot
    if ls is not None and rs is not None:
        def op(machine, regs, base, dst=dst, ls=ls, rs=rs, fn=fn):
            regs[dst] = 1 if fn(regs[ls], regs[rs]) else 0
    elif ls is not None:
        rc = rhs.const

        def op(machine, regs, base, dst=dst, ls=ls, rc=rc, fn=fn):
            regs[dst] = 1 if fn(regs[ls], rc) else 0
    elif rs is not None:
        lc = lhs.const

        def op(machine, regs, base, dst=dst, lc=lc, rs=rs, fn=fn):
            regs[dst] = 1 if fn(lc, regs[rs]) else 0
    else:
        lc, rc = lhs.const, rhs.const

        def op(machine, regs, base, dst=dst, lc=lc, rc=rc, fn=fn):
            regs[dst] = 1 if fn(lc, rc) else 0
    return op


def _inline_arith32(opcode, dst, lhs, rhs):
    """Fully inlined 32-bit add/sub/mul for the dominant operand shapes
    (loop counters and array indexing); ``None`` when not applicable."""
    ls, rs = lhs.slot, rhs.slot
    if ls is None:
        return None
    if opcode == "add":
        if rs is not None:
            def op(machine, regs, base, dst=dst, ls=ls, rs=rs):
                value = (regs[ls] + regs[rs]) & _MASK32
                regs[dst] = value - 0x100000000 if value & _SIGN32 else value
            return op
        rc = rhs.const

        def op(machine, regs, base, dst=dst, ls=ls, rc=rc):
            value = (regs[ls] + rc) & _MASK32
            regs[dst] = value - 0x100000000 if value & _SIGN32 else value
        return op
    if opcode == "sub":
        if rs is not None:
            def op(machine, regs, base, dst=dst, ls=ls, rs=rs):
                value = (regs[ls] - regs[rs]) & _MASK32
                regs[dst] = value - 0x100000000 if value & _SIGN32 else value
            return op
        rc = rhs.const

        def op(machine, regs, base, dst=dst, ls=ls, rc=rc):
            value = (regs[ls] - rc) & _MASK32
            regs[dst] = value - 0x100000000 if value & _SIGN32 else value
        return op
    if opcode == "mul":
        if rs is not None:
            def op(machine, regs, base, dst=dst, ls=ls, rs=rs):
                value = (regs[ls] * regs[rs]) & _MASK32
                regs[dst] = value - 0x100000000 if value & _SIGN32 else value
            return op
        rc = rhs.const

        def op(machine, regs, base, dst=dst, ls=ls, rc=rc):
            value = (regs[ls] * rc) & _MASK32
            regs[dst] = value - 0x100000000 if value & _SIGN32 else value
        return op
    return None


_RETURN = object()


class _CompiledFunction:
    __slots__ = ("function", "blocks", "entry_id", "num_regs", "arg_regs",
                 "edge_hooks", "latch_getters")

    def __init__(self, function):
        self.function = function
        self.blocks = {}
        self.entry_id = None
        self.num_regs = 0
        self.arg_regs = []
        self.edge_hooks = {}
        self.latch_getters = {}


class Interpreter:
    """Compiles and executes a module, firing runtime callbacks.

    Args:
        module: a verified IR module with a ``main`` function.
        runtime: optional Loopapalooza runtime receiving the events.
        instrumentation: optional ``{function_name: FunctionInstrumentation}``.
        fuel: dynamic IR instruction budget (guards runaway programs).
        backend: ``"par"`` (parallel execution tier: vector JIT plus
            worker-pool DOALL/TLS sections), ``"vec"`` (vector-enabled
            template JIT, the default), ``"jit"`` (scalar template JIT),
            ``"closure"`` (PR 1 closure interpreter), or ``None`` to
            follow the ``REPRO_PAR`` / ``REPRO_NO_VEC`` / ``REPRO_NO_JIT``
            environment contract.
        par_workers: worker count for the ``par`` backend (default:
            ``REPRO_PAR_WORKERS`` or the host core count).
    """

    def __init__(self, module, runtime=None, instrumentation=None,
                 fuel=200_000_000, backend=None, par_workers=None):
        if backend is None:
            backend = backend_from_env()
        if backend not in ("par", "vec", "jit", "closure"):
            raise InterpError(
                f"unknown interpreter backend {backend!r} "
                "(choose 'par', 'vec', 'jit' or 'closure')"
            )
        self.module = module
        self.runtime = runtime
        self.instrumentation = instrumentation or {}
        self.fuel = fuel
        self.backend = backend
        # The parallel tier needs typed (NumPy-lane) slot memory so worker
        # processes can view it through shared memory; REPRO_TYPED_MEMORY
        # forces the typed layout under any backend (property tests,
        # memory-semantics audits). Everyone else keeps the list space.
        self.par = None
        if backend == "par":
            from .memory import TypedAddressSpace
            from .parexec import ParExecutor, default_workers

            workers = par_workers if par_workers is not None \
                else default_workers()
            self.space = TypedAddressSpace(shared=workers > 1)
            self.par = ParExecutor(self, workers)
        elif _truthy_env("REPRO_TYPED_MEMORY"):
            from .memory import TypedAddressSpace

            self.space = TypedAddressSpace()
        else:
            self.space = AddressSpace()
        self.cost = 0
        self.output = []
        self.prng_state = 0x853C49E6748FEA9B
        self.input_cursor = 0
        self.global_bases = {}
        self._compiled = {}
        self._jit_entries = {}
        self._jit_failed = set()
        # Vector-tier observability: loop_id -> count of committed kernel
        # runs / of runtime-guard bailouts (kernel fell through to the
        # scalar path for that invocation).
        self.vec_runs = {}
        self.vec_bailouts = {}
        # Parallel-tier observability: loop_id -> committed pool runs of
        # DOALL sections / committed TLS speculations.
        self.par_runs = {}
        self.par_tls_runs = {}
        self._call_depth = 0
        # Per-block batch of (is_write, address, ts) memory events, flushed
        # to the runtime after each call-free block's ops (see _call).
        self._membuf = []
        for variable in module.globals.values():
            self.global_bases[variable.name] = self.space.add_global(variable)

    # -- public API ---------------------------------------------------------------

    def run(self, function_name="main", args=()):
        """Execute ``function_name`` and return its result."""
        function = self.module.get_function(function_name)
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10_000))
        self._membuf.clear()  # a prior aborted run may have left events
        try:
            return self._call(function, list(args))
        finally:
            sys.setrecursionlimit(old_limit)

    # -- memory primitives (also used by intrinsic implementations) -------------

    def load_slot(self, address, ts=None):
        value = self.space.load(address)
        if self.runtime is not None:
            self.runtime.mem_read(address, self.cost if ts is None else ts)
        return value

    def store_slot(self, address, value, ts=None):
        self.space.store(address, value)
        if self.runtime is not None:
            self.runtime.mem_write(address, self.cost if ts is None else ts)

    def marks_for(self, address):
        return self.space.marks_for(address)

    # -- compilation ---------------------------------------------------------------

    def _compiled_for(self, function):
        compiled = self._compiled.get(function.name)
        if compiled is None:
            plan = self.instrumentation.get(function.name)
            compiled = self._compile_function(function, plan)
            self._compiled[function.name] = compiled
        return compiled

    def _compile_function(self, function, plan):
        compiled = _CompiledFunction(function)
        reg_index = {}

        def reg_for(value):
            key = id(value)
            slot = reg_index.get(key)
            if slot is None:
                slot = len(reg_index)
                reg_index[key] = slot
            return slot

        for argument in function.arguments:
            compiled.arg_regs.append(reg_for(argument))

        # First pass: assign registers to every value-producing instruction
        # so forward references (phis) resolve.
        for block in function.blocks:
            for instruction in block.instructions:
                if not instruction.type.is_void:
                    reg_for(instruction)

        def getter(value):
            """Return a closure fetching the operand's runtime value.

            The closure carries ``slot``/``const`` attributes (exactly one is
            non-``None``) so per-op compilers can inline the fetch — a
            register index or a constant — instead of calling through it.
            """
            if isinstance(value, (ConstantInt, ConstantFloat)):
                constant = value.value

                def get(regs, constant=constant):
                    return constant
                get.slot, get.const = None, constant
                return get
            if isinstance(value, GlobalVariable):
                base = self.global_bases[value.name]

                def get(regs, base=base):
                    return base
                get.slot, get.const = None, base
                return get
            from ..ir.function import Function as IRFunction

            if isinstance(value, IRFunction):
                raise InterpError("function values cannot be operands here")
            slot = reg_index[id(value)]

            def get(regs, slot=slot):
                return regs[slot]
            get.slot, get.const = slot, None
            return get

        for block in function.blocks:
            compiled_block = _CompiledBlock()
            compiled.blocks[id(block)] = compiled_block
            compiled_block.cost = len(block.instructions)
            # Memory events from a call-free block can be delivered to the
            # runtime in one batch after the block's ops: no call/loop/frame
            # event can interleave, so the runtime observes the same state it
            # would have per-event. Calls (including intrinsics, which may
            # emit their own memory events) and call-result-use hooks (which
            # race mem_read for the first-dependence timestamp) force
            # immediate emission.
            batch = self.runtime is not None and not any(
                isinstance(i, Call)
                or (plan is not None and plan.call_use_hooks.get(id(i)))
                for i in block.instructions
            )
            position = 0
            phis = []
            for instruction in block.instructions:
                if isinstance(instruction, Phi):
                    phis.append(instruction)
                    position += 1
                    continue
                if instruction.is_terminator:
                    terminator = self._compile_terminator(
                        instruction, getter, reg_index
                    )
                    if plan is not None:
                        use_entries = plan.use_hooks.get(id(instruction))
                        if use_entries:
                            terminator = self._wrap_terminator_uses(
                                terminator, use_entries, position
                            )
                    compiled_block.terminator = terminator
                else:
                    op = self._compile_op(
                        instruction, getter, reg_index, position, plan, batch
                    )
                    if op is not None:
                        compiled_block.ops.append(op)
                position += 1
            if compiled_block.terminator is None:
                raise InterpError(
                    f"block {block.name} in @{function.name} lacks a terminator"
                )
            compiled_block.run = _fuse_ops(compiled_block.ops)
            if phis:
                self._compile_phi_moves(
                    compiled_block, block, phis, getter, reg_index, plan
                )

        compiled.entry_id = id(function.entry_block)
        compiled.num_regs = len(reg_index)
        if plan is not None:
            compiled.edge_hooks = dict(plan.edge_actions)
            self._attach_latch_values(compiled, function, plan, getter)
        return compiled

    def _attach_latch_values(self, compiled, function, plan, getter):
        """Resolve latch-value references into reg getters, stored alongside
        the edge key for the dispatch loop to ship with ``loop_iter``."""
        resolved = {}
        for edge_key, specs in plan.latch_values.items():
            resolved[edge_key] = [
                (phi_key, getter(value_ref)) for phi_key, value_ref in specs
            ]
        compiled.latch_getters = resolved

    def _compile_phi_moves(self, compiled_block, block, phis, getter, reg_index, plan):
        """Parallel phi assignment per incoming edge (gather then scatter)."""
        predecessors = set()
        for phi in phis:
            predecessors.update(id(b) for b in phi.incoming_blocks)
        runtime = self  # machine reference for hooks
        for pred_id in predecessors:
            moves = []
            hooks = []
            for phi in phis:
                for value, pred in phi.incoming():
                    if id(pred) == pred_id:
                        moves.append((reg_index[id(phi)], getter(value)))
                        break
            if plan is not None:
                for phi in phis:
                    for entry in plan.def_hooks.get(id(phi), ()):
                        hooks.append(("def", entry, reg_index[id(phi)]))
                    for entry in plan.use_hooks.get(id(phi), ()):
                        hooks.append(("use", entry, reg_index[id(phi)]))
            if not hooks:
                if len(moves) == 1:
                    # One phi: no parallel-copy staging needed.
                    dst, get = moves[0]
                    src = get.slot
                    if src is not None:
                        def move(machine, regs, base, dst=dst, src=src):
                            regs[dst] = regs[src]
                    else:
                        constant = get.const

                        def move(machine, regs, base, dst=dst, constant=constant):
                            regs[dst] = constant
                    compiled_block.phi_moves[pred_id] = move
                    continue

                def move(machine, regs, base, moves=moves):
                    values = [get(regs) for _, get in moves]
                    for (dst, _), value in zip(moves, values):
                        regs[dst] = value
            else:
                def move(machine, regs, base, moves=moves, hooks=hooks):
                    values = [get(regs) for _, get in moves]
                    for (dst, _), value in zip(moves, values):
                        regs[dst] = value
                    rt = machine.runtime
                    if rt is not None:
                        for kind, (loop_id, phi_key), _ in hooks:
                            if kind == "def":
                                rt.lcd_def(loop_id, phi_key, machine.cost)
                            else:
                                rt.lcd_use(loop_id, phi_key, machine.cost)
            compiled_block.phi_moves[pred_id] = move

    # -- per-instruction compilation -----------------------------------------------

    def _compile_op(self, instruction, getter, reg_index, position, plan,
                    batch=False):
        op = self._compile_op_core(
            instruction, getter, reg_index, position, plan, batch
        )
        if plan is None:
            return op
        def_entries = plan.def_hooks.get(id(instruction), ())
        use_entries = plan.use_hooks.get(id(instruction), ())
        call_uses = plan.call_use_hooks.get(id(instruction), ())
        if not def_entries and not use_entries and not call_uses:
            return op
        entries = [("def", e) for e in def_entries] + [("use", e) for e in use_entries]

        def hooked(machine, regs, base, op=op, entries=entries,
                   call_uses=call_uses, position=position):
            rt = machine.runtime
            if rt is not None and call_uses:
                # Result-use hooks fire before the consumer executes.
                ts = base + position
                for site_id in call_uses:
                    rt.call_result_use(site_id, ts)
            if op is not None:
                op(machine, regs, base)
            if rt is not None:
                ts = base + position
                for kind, (loop_id, phi_key) in entries:
                    if kind == "def":
                        rt.lcd_def(loop_id, phi_key, ts)
                    else:
                        rt.lcd_use(loop_id, phi_key, ts)

        return hooked

    def _compile_op_core(self, instruction, getter, reg_index, position,
                         plan=None, batch=False):
        if isinstance(instruction, BinaryOp):
            dst = reg_index[id(instruction)]
            lhs = getter(instruction.lhs)
            rhs = getter(instruction.rhs)
            opcode = instruction.opcode
            if opcode in _INT_OPS and instruction.type.is_integer:
                fn = _INT_OPS[opcode]
                if instruction.type.width != 32:
                    width = instruction.type.width
                    mask = (1 << width) - 1
                    # i1/i64 arithmetic: plain Python semantics suffice.
                    # Unsigned ops view the two's-complement bit pattern of
                    # the operand (widths are powers of two, so ``& (w-1)``
                    # masks shift amounts like the 32-bit table does).
                    fn = {"add": lambda a, b: a + b, "sub": lambda a, b: a - b,
                          "mul": lambda a, b: a * b, "and": lambda a, b: a & b,
                          "or": lambda a, b: a | b, "xor": lambda a, b: a ^ b,
                          "shl": lambda a, b: a << b, "ashr": lambda a, b: a >> b,
                          "lshr": lambda a, b, mask=mask, width=width:
                              (a & mask) >> (b & (width - 1)),
                          }.get(opcode, fn)
                else:
                    op = _inline_arith32(opcode, dst, lhs, rhs)
                    if op is not None:
                        return op
                return _fn_binop(dst, lhs, rhs, fn)
            if opcode in ("sdiv", "srem", "udiv", "urem"):
                # Division semantics (incl. the INT_MIN / -1 wrap and the
                # zero-divisor trap) live in the module-level helpers so the
                # JIT backend shares them verbatim.
                fn = {"sdiv": signed_div, "srem": signed_rem,
                      "udiv": unsigned_div, "urem": unsigned_rem}[opcode]
                width = instruction.type.width

                def op(machine, regs, base, dst=dst, lhs=lhs, rhs=rhs,
                       fn=fn, width=width):
                    regs[dst] = fn(lhs(regs), rhs(regs), width)
                return op
            if opcode in _FLOAT_OPS:
                return _fn_binop(dst, lhs, rhs, _FLOAT_OPS[opcode])
            if opcode == "fdiv":
                def op(machine, regs, base, dst=dst, lhs=lhs, rhs=rhs):
                    divisor = rhs(regs)
                    if divisor == 0.0:
                        raise TrapError("float division by zero")
                    regs[dst] = lhs(regs) / divisor
                return op
            raise InterpError(f"unsupported binary opcode {opcode}")

        if isinstance(instruction, ICmp):
            dst = reg_index[id(instruction)]
            lhs = getter(instruction.lhs)
            rhs = getter(instruction.rhs)
            return _fn_cmp(dst, lhs, rhs, _ICMP_OPS[instruction.predicate])

        if isinstance(instruction, FCmp):
            dst = reg_index[id(instruction)]
            lhs = getter(instruction.lhs)
            rhs = getter(instruction.rhs)
            return _fn_cmp(dst, lhs, rhs, _FCMP_OPS[instruction.predicate])

        if isinstance(instruction, Alloca):
            dst = reg_index[id(instruction)]
            size = instruction.allocated_type.size_in_slots()
            zero = 0.0 if _alloc_zero_is_float(instruction.allocated_type) else 0
            allocate = self.space.allocate
            if self.runtime is None:
                def op(machine, regs, base, dst=dst, size=size, zero=zero,
                       allocate=allocate):
                    regs[dst] = allocate(size, zero, None)
                return op
            current_marks = self.runtime.current_marks

            def op(machine, regs, base, dst=dst, size=size, zero=zero,
                   allocate=allocate, current_marks=current_marks):
                regs[dst] = allocate(size, zero, current_marks())
            return op

        if isinstance(instruction, Load):
            dst = reg_index[id(instruction)]
            pointer = getter(instruction.pointer)
            space_load = self.space.load
            if self.runtime is None:
                def op(machine, regs, base, dst=dst, pointer=pointer,
                       space_load=space_load):
                    regs[dst] = space_load(pointer(regs))
                return op
            if batch:
                membuf = self._membuf
                pslot = pointer.slot
                if pslot is not None:
                    def op(machine, regs, base, dst=dst, pslot=pslot,
                           space_load=space_load, membuf=membuf,
                           position=position):
                        address = regs[pslot]
                        regs[dst] = space_load(address)
                        membuf.append((False, address, base + position))
                    return op

                def op(machine, regs, base, dst=dst, pointer=pointer,
                       space_load=space_load, membuf=membuf, position=position):
                    address = pointer(regs)
                    regs[dst] = space_load(address)
                    membuf.append((False, address, base + position))
                return op
            mem_read = self.runtime.mem_read

            def op(machine, regs, base, dst=dst, pointer=pointer,
                   space_load=space_load, mem_read=mem_read, position=position):
                address = pointer(regs)
                value = space_load(address)
                mem_read(address, base + position)
                regs[dst] = value
            return op

        if isinstance(instruction, Store):
            pointer = getter(instruction.pointer)
            value = getter(instruction.value)
            space_store = self.space.store
            if self.runtime is None:
                def op(machine, regs, base, pointer=pointer, value=value,
                       space_store=space_store):
                    space_store(pointer(regs), value(regs))
                return op
            if batch:
                membuf = self._membuf
                pslot = pointer.slot
                if pslot is not None:
                    def op(machine, regs, base, pslot=pslot, value=value,
                           space_store=space_store, membuf=membuf,
                           position=position):
                        address = regs[pslot]
                        space_store(address, value(regs))
                        membuf.append((True, address, base + position))
                    return op

                def op(machine, regs, base, pointer=pointer, value=value,
                       space_store=space_store, membuf=membuf, position=position):
                    address = pointer(regs)
                    space_store(address, value(regs))
                    membuf.append((True, address, base + position))
                return op
            mem_write = self.runtime.mem_write

            def op(machine, regs, base, pointer=pointer, value=value,
                   space_store=space_store, mem_write=mem_write,
                   position=position):
                address = pointer(regs)
                space_store(address, value(regs))
                mem_write(address, base + position)
            return op

        if isinstance(instruction, GEP):
            dst = reg_index[id(instruction)]
            pointer = getter(instruction.pointer)
            scales = []
            element = instruction.pointer.type.pointee
            for index in instruction.indices:
                if element.is_array:
                    scales.append((element.element.size_in_slots(), getter(index)))
                    element = element.element
                else:
                    scales.append((element.size_in_slots(), getter(index)))
            if len(scales) == 1:
                scale, index_get = scales[0]
                pslot, islot = pointer.slot, index_get.slot
                if islot is not None:
                    if pslot is not None:
                        def op(machine, regs, base, dst=dst, pslot=pslot,
                               scale=scale, islot=islot):
                            regs[dst] = regs[pslot] + scale * regs[islot]
                        return op
                    pconst = pointer.const

                    def op(machine, regs, base, dst=dst, pconst=pconst,
                           scale=scale, islot=islot):
                        regs[dst] = pconst + scale * regs[islot]
                    return op

                def op(machine, regs, base, dst=dst, pointer=pointer,
                       scale=scale, index_get=index_get):
                    regs[dst] = pointer(regs) + scale * index_get(regs)
                return op

            def op(machine, regs, base, dst=dst, pointer=pointer, scales=scales):
                address = pointer(regs)
                for scale, index_get in scales:
                    address += scale * index_get(regs)
                regs[dst] = address
            return op

        if isinstance(instruction, Call):
            callee = instruction.callee
            arg_getters = [getter(a) for a in instruction.args]
            dst = reg_index.get(id(instruction))
            if callee.is_intrinsic:
                info = callee.intrinsic
                extra_cost = max(0, info.cost - 1)
                impl = info.implementation

                def op(machine, regs, base, dst=dst, impl=impl,
                       arg_getters=arg_getters, extra_cost=extra_cost):
                    machine.cost += extra_cost
                    if machine.cost > machine.fuel:
                        raise FuelExhausted(machine.fuel)
                    result = impl(machine, [g(regs) for g in arg_getters])
                    if dst is not None:
                        regs[dst] = result
                return op

            site_id = plan.call_sites.get(id(instruction)) if plan else None
            if site_id is None:
                def op(machine, regs, base, dst=dst, callee=callee,
                       arg_getters=arg_getters):
                    result = machine._call(callee, [g(regs) for g in arg_getters])
                    if dst is not None:
                        regs[dst] = result
                return op

            def op(machine, regs, base, dst=dst, callee=callee,
                   arg_getters=arg_getters, site_id=site_id):
                rt = machine.runtime
                if rt is not None:
                    rt.call_start(site_id, machine.cost)
                result = machine._call(callee, [g(regs) for g in arg_getters])
                if rt is not None:
                    rt.call_end(site_id, machine.cost)
                if dst is not None:
                    regs[dst] = result
            return op

        if isinstance(instruction, Select):
            dst = reg_index[id(instruction)]
            condition = getter(instruction.condition)
            true_get = getter(instruction.true_value)
            false_get = getter(instruction.false_value)

            def op(machine, regs, base, dst=dst, condition=condition,
                   true_get=true_get, false_get=false_get):
                regs[dst] = true_get(regs) if condition(regs) else false_get(regs)
            return op

        if isinstance(instruction, Cast):
            dst = reg_index[id(instruction)]
            value = getter(instruction.value)
            opcode = instruction.opcode
            if opcode == "sitofp":
                def op(machine, regs, base, dst=dst, value=value):
                    regs[dst] = float(value(regs))
                return op
            if opcode == "fptosi":
                def op(machine, regs, base, dst=dst, value=value):
                    regs[dst] = _wrap32(int(value(regs)))
                return op
            if opcode == "zext":
                def op(machine, regs, base, dst=dst, value=value):
                    regs[dst] = value(regs)
                return op
            if opcode == "trunc":
                width = instruction.type.width

                def op(machine, regs, base, dst=dst, value=value, width=width):
                    raw = value(regs) & ((1 << width) - 1)
                    if width > 1 and raw >= (1 << (width - 1)):
                        raw -= 1 << width
                    regs[dst] = raw
                return op

        raise InterpError(f"cannot compile {instruction!r}")

    @staticmethod
    def _wrap_terminator_uses(terminator, use_entries, position):
        """Fire LCD-use hooks when an instrumented phi feeds a terminator."""

        def wrapped(machine, regs, base, terminator=terminator,
                    use_entries=use_entries, position=position):
            rt = machine.runtime
            if rt is not None:
                ts = base + position
                for loop_id, phi_key in use_entries:
                    rt.lcd_use(loop_id, phi_key, ts)
            return terminator(machine, regs, base)

        return wrapped

    def _compile_terminator(self, instruction, getter, reg_index):
        if isinstance(instruction, Br):
            target_id = id(instruction.target)

            def term(machine, regs, base, target_id=target_id):
                return target_id
            return term
        if isinstance(instruction, CondBr):
            condition = getter(instruction.condition)
            then_id = id(instruction.then_block)
            else_id = id(instruction.else_block)

            def term(machine, regs, base, condition=condition,
                     then_id=then_id, else_id=else_id):
                return then_id if condition(regs) else else_id
            return term
        if isinstance(instruction, Ret):
            if instruction.value is None:
                def term(machine, regs, base):
                    machine._return_value = None
                    return _RETURN
                return term
            value = getter(instruction.value)

            def term(machine, regs, base, value=value):
                machine._return_value = value(regs)
                return _RETURN
            return term
        raise InterpError(f"unknown terminator {instruction!r}")

    # -- JIT backend ---------------------------------------------------------------

    def _jit_for(self, function):
        """The compiled JIT entry for ``function``, or ``None`` when the
        template JIT cannot lower it (per-function closure fallback)."""
        name = function.name
        entry = self._jit_entries.get(name)
        if entry is not None:
            return entry
        if name in self._jit_failed:
            return None
        from .codegen import CodegenUnsupported, jit_entry
        from ..core.instrument import jit_variant_for

        plan = self.instrumentation.get(name)
        try:
            entry = jit_entry(
                function, plan, jit_variant_for(plan, self.runtime),
                vectorize=(self.backend in ("vec", "par")),
                parallel=(self.backend == "par"),
            )
        except CodegenUnsupported:
            self._jit_failed.add(name)
            return None
        self._jit_entries[name] = entry
        return entry

    # -- execution ------------------------------------------------------------------

    def _call(self, function, args):
        if function.is_intrinsic:
            return function.intrinsic.implementation(self, args)
        if function.is_declaration:
            raise InterpError(f"call to undefined function @{function.name}")
        self._call_depth += 1
        if self._call_depth > 2000:
            self._call_depth -= 1
            raise TrapError("call stack depth limit exceeded")
        if self.backend != "closure":
            entry = self._jit_for(function)
            if entry is not None:
                runtime = self.runtime
                frame_base = self.space.frame_base()
                if runtime is not None:
                    runtime.func_enter(function)
                try:
                    return entry(self, args)
                finally:
                    self._call_depth -= 1
                    self.space.release_to(frame_base)
                    if runtime is not None:
                        runtime.func_exit(function)
        compiled = self._compiled_for(function)
        regs = [None] * compiled.num_regs
        for slot, value in zip(compiled.arg_regs, args):
            regs[slot] = value

        runtime = self.runtime
        frame_base = self.space.frame_base()
        membuf = self._membuf
        mem_batch = None
        if runtime is not None:
            runtime.func_enter(function)
            mem_batch = runtime.mem_batch

        blocks = compiled.blocks
        edge_hooks = compiled.edge_hooks
        latch_getters = compiled.latch_getters
        check_edges = runtime is not None and bool(edge_hooks)
        fuel = self.fuel
        block_id = compiled.entry_id
        pred_id = None
        try:
            while True:
                if check_edges and pred_id is not None:
                    edge_key = (pred_id, block_id)
                    actions = edge_hooks.get(edge_key)
                    if actions is not None:
                        ts = self.cost
                        for kind, loop_id in actions:
                            if kind == "iter":
                                specs = latch_getters.get(edge_key, ())
                                values = [
                                    (phi_key, get(regs)) for phi_key, get in specs
                                ]
                                runtime.loop_iter(loop_id, ts, values)
                            elif kind == "enter":
                                runtime.loop_enter(loop_id, ts)
                            else:
                                runtime.loop_exit(loop_id, ts)
                block = blocks[block_id]
                move = block.phi_moves.get(pred_id)
                if move is not None:
                    move(self, regs, self.cost)
                base = self.cost
                self.cost = base + block.cost
                if self.cost > fuel:
                    raise FuelExhausted(fuel)
                run = block.run
                if run is not None:
                    run(self, regs, base)
                    # Deliver the block's batched memory events before the
                    # terminator fires any edge actions for the next block.
                    if membuf:
                        mem_batch(membuf)
                        del membuf[:]
                next_id = block.terminator(self, regs, base)
                if next_id is _RETURN:
                    return self._return_value
                pred_id = block_id
                block_id = next_id
        finally:
            self._call_depth -= 1
            self.space.release_to(frame_base)
            if runtime is not None:
                runtime.func_exit(function)

    @property
    def fuel_left(self):
        return self.fuel - self.cost


def _alloc_zero_is_float(type_):
    while type_.is_array:
        type_ = type_.element
    return type_.is_float


def run_module(module, function_name="main", args=(), runtime=None,
               instrumentation=None, fuel=200_000_000, backend=None,
               par_workers=None):
    """Convenience: build an interpreter, run, and return
    ``(result, interpreter)``."""
    interpreter = Interpreter(module, runtime, instrumentation, fuel,
                              backend=backend, par_workers=par_workers)
    result = interpreter.run(function_name, args)
    return result, interpreter
