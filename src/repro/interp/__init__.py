"""repro.interp — the IR interpreter (execution substrate).

A closure-compiling interpreter over the repro IR with a flat slot-addressed
memory model, the library-intrinsic registry, and the instrumentation hook
plumbing the Loopapalooza runtime plugs into.
"""

from .interpreter import FunctionInstrumentation, Interpreter, run_module
from .intrinsics import INTRINSICS, IntrinsicInfo, declare_intrinsics
from .memory import AddressSpace

__all__ = [
    "AddressSpace",
    "FunctionInstrumentation",
    "INTRINSICS",
    "Interpreter",
    "IntrinsicInfo",
    "declare_intrinsics",
    "run_module",
]
