"""Loopapalooza — a compiler-driven limit study of loop-level parallelism.

Python reproduction of Zaidi, Iordanou, Luján & Gabrielli, "Loopapalooza:
Investigating Limits of Loop-Level Parallelism with a Compiler-Driven
Approach" (ISPASS 2021).

Public entry points:

* :class:`repro.core.Loopapalooza` — compile a MiniC program, profile it, and
  evaluate any Table-II configuration.
* :class:`repro.core.LPConfig` — the ``reducX-depY-fnZ`` configuration flags.
* :mod:`repro.bench` — the synthetic SPEC/EEMBC benchmark suites.
* :mod:`repro.reporting` — the figure/table regeneration harness.
"""

__version__ = "1.0.0"


def __getattr__(name):
    """Lazy re-exports of the main entry points, so ``import repro`` stays
    cheap while ``repro.Loopapalooza`` etc. still work."""
    if name in ("Loopapalooza", "LPConfig", "paper_configurations",
                "BEST_PDOALL", "BEST_HELIX"):
        from . import core

        return getattr(core, name)
    if name == "compile_source":
        from .frontend import compile_source

        return compile_source
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "BEST_HELIX",
    "BEST_PDOALL",
    "LPConfig",
    "Loopapalooza",
    "__version__",
    "compile_source",
    "paper_configurations",
]
