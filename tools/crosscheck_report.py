#!/usr/bin/env python
"""Static-vs-dynamic soundness smoke over every bundled benchmark.

Runs the full crosscheck (every suite, every program, every loop), prints
the verbose per-loop table as a CI artifact, and enforces two gates:

1. **soundness** — no loop classified ``STATIC_DOALL`` recorded a dynamic
   cross-iteration conflict (the must-hold contract of the static
   dependence engine);
2. **yield** — the engine actually proves a substantial share of loops
   (guards against a regression that silently classifies everything
   ``UNKNOWN``, which would be vacuously "sound").

Exit status 0 only if both hold. Run via ``make crosscheck``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import SuiteRunner  # noqa: E402
from repro.reporting import crosscheck_suites, format_crosscheck  # noqa: E402

#: The engine currently proves ~half of all bench loops (117 DOALL + 57
#: LCD of 225); regressions below this floor deserve investigation.
MIN_RESOLVED_FRACTION = 0.40


def main():
    runner = SuiteRunner()
    report = crosscheck_suites(runner)
    print(format_crosscheck(report, verbose=True))
    print()

    failures = 0
    counts = report.counts()
    total = len(report.rows)
    if report.unsound:
        print(f"FAIL: {len(report.unsound)} unsound STATIC_DOALL loop(s)")
        failures += 1
    else:
        print(f"ok: soundness holds over {total} loops")

    resolved = (counts["static-proved"] + counts["static-missed"]
                + counts["confirmed-lcd"])
    fraction = resolved / total if total else 0.0
    if fraction < MIN_RESOLVED_FRACTION:
        print(f"FAIL: only {resolved}/{total} loops resolved statically "
              f"({fraction:.0%} < {MIN_RESOLVED_FRACTION:.0%} floor)")
        failures += 1
    else:
        print(f"ok: {resolved}/{total} loops resolved statically "
              f"({fraction:.0%})")

    if counts["unobserved"]:
        print(f"note: {counts['unobserved']} loop(s) never ran under the "
              f"profiling input")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
