#!/usr/bin/env python
"""End-to-end fault-tolerance smoke for the sweep engine.

Three sweeps over the same (benchmark x config) slice:

1. **baseline** — undisturbed serial run; its rendered text is the truth.
2. **faulted** — parallel run with ``REPRO_SWEEP_FAULT_SENTINEL`` armed:
   exactly one worker SIGKILLs itself mid-sweep. The engine must absorb
   the kill (retry on a fresh pool), the manifest must record the retry,
   and the rendered text must match the baseline byte-for-byte.
3. **resumed** — the faulted run is "interrupted" and resumed by a fresh
   runner with cold in-process caches and no profile store: every task
   must be served from the run ledger, re-profiling nothing, and the
   rendered text must again match byte-for-byte.

Exit status 0 only if all assertions hold. Run via
``make sweep-fault-smoke``.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.suites import (  # noqa: E402
    FAULT_SENTINEL_ENV,
    SuiteRunner,
    suite_programs,
)
from repro.runtime.telemetry import RunTelemetry  # noqa: E402

CONFIGS = ("doall:reduc1-dep0-fn0", "pdoall:reduc1-dep2-fn2")


def render(grid):
    """Deterministic figure-style text for a grid (repr-exact floats)."""
    lines = []
    for full_name, row in grid.items():
        for config_name, result in row.items():
            lines.append(
                f"{full_name:40s} {config_name:24s} "
                f"{result.speedup!r} {result.coverage!r}"
            )
    return "\n".join(lines) + "\n"


def main():
    programs = suite_programs("eembc")[:3]
    failures = []

    with tempfile.TemporaryDirectory(prefix="repro-fault-smoke-") as tmp:
        runs_root = os.path.join(tmp, "runs")

        print("== baseline (serial, undisturbed) ==")
        baseline_runner = SuiteRunner(cache_dir=os.path.join(tmp, "base"))
        baseline = render(baseline_runner.evaluate_many(programs, CONFIGS))
        sys.stdout.write(baseline)

        print("== faulted (one worker SIGKILLed mid-sweep) ==")
        sentinel = os.path.join(tmp, "fault-sentinel")
        os.environ[FAULT_SENTINEL_ENV] = sentinel
        try:
            telemetry = RunTelemetry.create(root=runs_root)
            faulted_runner = SuiteRunner(cache_dir=os.path.join(tmp, "flt"))
            faulted = render(faulted_runner.evaluate_many(
                programs, CONFIGS, jobs=2, telemetry=telemetry, retries=3,
            ))
            telemetry.finish(status="interrupted")
        finally:
            del os.environ[FAULT_SENTINEL_ENV]
        sys.stdout.write(faulted)

        if not os.path.exists(sentinel):
            failures.append("fault was never injected (sentinel not claimed)")
        if telemetry.retries < 1:
            failures.append(
                f"manifest records {telemetry.retries} retries, expected >= 1"
            )
        if faulted != baseline:
            failures.append("faulted sweep text differs from baseline")

        print("== resumed (fresh process, ledger only) ==")
        resumed_tel = RunTelemetry.resume(telemetry.run_id, root=runs_root)
        resumed_runner = SuiteRunner(
            cache_dir=os.path.join(tmp, "cold"))
        resumed = render(resumed_runner.evaluate_many(
            programs, CONFIGS, telemetry=resumed_tel,
        ))
        resumed_tel.finish()
        sys.stdout.write(resumed)

        if resumed != baseline:
            failures.append("resumed sweep text differs from baseline")
        if resumed_tel.resumed != len(programs):
            failures.append(
                f"{resumed_tel.resumed}/{len(programs)} tasks restored "
                "from the ledger"
            )
        if resumed_runner.profiles_measured != 0:
            failures.append(
                f"resume re-profiled {resumed_runner.profiles_measured} "
                "benchmarks (expected 0)"
            )

        print(f"== manifest == {telemetry.describe()}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("sweep-fault-smoke: OK (retry + resume byte-identical to baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
