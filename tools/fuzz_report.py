#!/usr/bin/env python
"""Quarantine-corpus state report for the differential fuzzer.

Prints every case in the corpus (default ``fuzz_corpus/``, override with
``REPRO_FUZZ_CORPUS`` or argv[1]) grouped by oracle and profile, with the
pipeline fingerprint and grammar version each case was quarantined
under, and flags entries whose grammar version no longer matches the
current generator (the reproducer still replays — ``source`` is stored
verbatim — but the ``(seed, profile)`` pair will no longer regenerate
it).

Informational only: exit status is always 0. The *gate* on corpus
entries is ``tests/test_fuzz_corpus.py``, which replays every case and
fails while any still reproduces. Run via ``make fuzz-report``.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz.corpus import corpus_root, load_cases  # noqa: E402
from repro.fuzz.genprog import GEN_VERSION  # noqa: E402


def main():
    root = corpus_root(sys.argv[1] if len(sys.argv) > 1 else None)
    cases = load_cases(root)
    print(f"quarantine corpus: {root} — {len(cases)} case(s)")
    if not cases:
        print("  empty: no oracle disagreement is currently quarantined")
        return 0

    by_oracle = {}
    by_profile = {}
    for case in cases:
        by_oracle[case.oracle] = by_oracle.get(case.oracle, 0) + 1
        by_profile[case.profile] = by_profile.get(case.profile, 0) + 1
    print("  by oracle:  " + "  ".join(
        f"{oracle}={count}" for oracle, count in sorted(by_oracle.items())))
    print("  by profile: " + "  ".join(
        f"{profile}={count}"
        for profile, count in sorted(by_profile.items())))
    print()

    for case in cases:
        stale = "" if case.gen_version == GEN_VERSION \
            else f"  [grammar {case.gen_version}, current {GEN_VERSION}]"
        print(f"{case.case_id}{stale}")
        print(f"  detail:      {case.detail}")
        print(f"  fingerprint: {case.fingerprint}")
        print(f"  minimized:   {len(case.source.splitlines())} line(s) "
              f"(from {len(case.original_source.splitlines())})")
        for failure in case.failures[1:]:
            print(f"  also:        [{failure.get('oracle', '?')}] "
                  f"{failure.get('detail', '')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
