#!/usr/bin/env python
"""Interpreter backend throughput tracker: ``make bench-interp``.

Times the closure, scalar-JIT, vector, and parallel backends —
uninstrumented execution and one instrumented profiling run — on a
numeric kernel,
then appends the
measurement as a row under ``interp_backend_rows`` in
BENCH_infrastructure.json (the same file ``make bench`` writes its
pytest-benchmark dump to; the rows ride alongside and survive that
rewrite only until the next ``make bench``, so treat this as a local
engineering log, not paper data).
"""

import json
import pathlib
import sys
import time

from repro.bench import find_program
from repro.core.framework import Loopapalooza
from repro.frontend import compile_source
from repro.interp.interpreter import Interpreter
from repro.runtime.recorder import ProfilingRuntime

KERNEL_NAME = "specfp2000/swim_like"
BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_infrastructure.json"
)


def _best(run, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return min(times)


def measure(kernel_name=KERNEL_NAME):
    source = find_program(kernel_name).source
    module = compile_source(source)
    lp = Loopapalooza(source, "bench_interp")
    row = {"kernel": kernel_name, "time": time.time(), "backends": {}}
    for backend in ("closure", "jit", "vec", "par"):

        def run_plain():
            machine = Interpreter(module, backend=backend)
            machine.run("main")
            return machine.cost

        def run_instrumented():
            runtime = ProfilingRuntime("bench_interp")
            machine = Interpreter(
                lp.module, runtime, lp.instrumentation, backend=backend
            )
            runtime.attach(machine)
            result = machine.run("main")
            return runtime.finish(machine.cost, result).total_cost

        cost = run_plain()  # warm run: fuse closures / compile templates
        run_instrumented()
        plain_s = _best(run_plain)
        instrumented_s = _best(run_instrumented)
        row["backends"][backend] = {
            "plain_s": round(plain_s, 6),
            "instrumented_s": round(instrumented_s, 6),
            "instructions": cost,
            "minstr_per_s": round(cost / plain_s / 1e6, 3),
        }
    closure = row["backends"]["closure"]
    jit = row["backends"]["jit"]
    vec = row["backends"]["vec"]
    row["jit_speedup_plain"] = round(closure["plain_s"] / jit["plain_s"], 3)
    row["jit_speedup_instrumented"] = round(
        closure["instrumented_s"] / jit["instrumented_s"], 3
    )
    par = row["backends"]["par"]
    row["vec_speedup_plain"] = round(jit["plain_s"] / vec["plain_s"], 3)
    row["vec_speedup_instrumented"] = round(
        jit["instrumented_s"] / vec["instrumented_s"], 3
    )
    row["par_speedup_plain"] = round(vec["plain_s"] / par["plain_s"], 3)
    row["par_speedup_instrumented"] = round(
        vec["instrumented_s"] / par["instrumented_s"], 3
    )
    return row


def append_row(row, path=BENCH_FILE):
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        data = {}
    data.setdefault("interp_backend_rows", []).append(row)
    path.write_text(json.dumps(data, indent=4))


def main():
    row = measure()
    append_row(row)
    for backend, stats in row["backends"].items():
        print(f"{backend:8s} plain {stats['plain_s']:.3f}s "
              f"({stats['minstr_per_s']:.2f} M instr/s), "
              f"instrumented {stats['instrumented_s']:.3f}s")
    print(f"JIT speedup over closure: {row['jit_speedup_plain']}x plain, "
          f"{row['jit_speedup_instrumented']}x instrumented")
    print(f"vec speedup over JIT: {row['vec_speedup_plain']}x plain, "
          f"{row['vec_speedup_instrumented']}x instrumented")
    print(f"par speedup over vec: {row['par_speedup_plain']}x plain, "
          f"{row['par_speedup_instrumented']}x instrumented")
    print(f"row appended to {BENCH_FILE.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
