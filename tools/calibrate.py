#!/usr/bin/env python
"""Calibration helper: per-benchmark speedups at the key configurations.

Run while tuning the synthetic suites:

    python tools/calibrate.py [suite ...]
"""

import sys

from repro.bench import ALL_SUITES, default_runner, suite_programs
from repro.core.config import LPConfig
from repro.reporting import geomean

KEY_CONFIGS = [
    ("doall00", LPConfig("doall", 0, 0, 0)),
    ("doall10", LPConfig("doall", 1, 0, 0)),
    ("pd-d2f0", LPConfig("pdoall", 1, 2, 0)),
    ("pd-d0f2", LPConfig("pdoall", 0, 0, 2)),
    ("pd-d2f2", LPConfig("pdoall", 1, 2, 2)),
    ("pd-d3f3", LPConfig("pdoall", 0, 3, 3)),
    ("hx-d0f2", LPConfig("helix", 0, 0, 2)),
    ("hx-d1f2", LPConfig("helix", 1, 1, 2)),
]


def main(argv):
    suites = argv or list(ALL_SUITES)
    runner = default_runner()
    for suite in suites:
        print(f"\n== {suite} ==")
        header = f"{'benchmark':20s}" + "".join(f"{n:>9s}" for n, _ in KEY_CONFIGS)
        print(header + f"{'cost':>10s}")
        per_config = {name: [] for name, _ in KEY_CONFIGS}
        for program in suite_programs(suite):
            lp = runner.instance(program)
            row = f"{program.name:20s}"
            for name, config in KEY_CONFIGS:
                speedup = lp.evaluate(config).speedup
                per_config[name].append(speedup)
                row += f"{speedup:>8.1f}x"
            print(row + f"{lp.total_cost:>10d}")
        row = f"{'GEOMEAN':20s}"
        for name, _ in KEY_CONFIGS:
            row += f"{geomean(per_config[name]):>8.2f}x"
        print(row)


if __name__ == "__main__":
    main(sys.argv[1:])
