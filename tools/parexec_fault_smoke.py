#!/usr/bin/env python
"""End-to-end fault-tolerance smoke for the parallel execution tier.

Three runs of the same two kernels (one STATIC_DOALL, one speculated
LCD chain), with ``REPRO_PAR_FAULT_SENTINEL`` armed so exactly one
worker task misbehaves fleet-wide:

1. **baseline** — the scalar JIT; its (result, cost, output) triple is
   the truth.
2. **kill-doall** — a pool worker SIGKILLs itself mid-chunk. The
   executor must rebuild the pool, retry the chunk, and reproduce the
   baseline triple byte-for-byte, with the retry visible in its stats.
3. **kill-tls** — a speculative TLS chunk is killed with retries
   disabled. The speculation must abort *cleanly*: no partial commit
   poisons memory, and the scalar re-execution reproduces the baseline.

Exit status 0 only if all assertions hold. Run via
``make parexec-fault-smoke``.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.frontend.codegen import compile_source  # noqa: E402
from repro.interp.interpreter import Interpreter  # noqa: E402
from repro.interp.parexec import _discard_pool  # noqa: E402
from repro.runtime.faults import PAR_FAULT_SENTINEL_ENV  # noqa: E402

DOALL_SOURCE = """
int N = 8192;
int A[8192];
int main() { int i;
  for (i = 0; i < N; i = i + 1) { A[i] = (i * 7 + 13) & 1023; }
  return (A[57] + A[8000]) & 65535; }
"""

CHAIN_SOURCE = """
int N = 8192;
int A[8192];
int main() { int i;
  A[0] = 1;
  for (i = 1; i < N; i = i + 1) { A[i] = (A[i-1] + i) & 262143; }
  return A[8191] & 65535; }
"""


def run(source, backend, workers=None):
    machine = Interpreter(compile_source(source), backend=backend,
                          par_workers=workers)
    result = machine.run("main")
    return machine, (result, machine.cost, tuple(machine.output))


def main():
    failures = []
    os.environ["REPRO_PAR_MIN_TRIP"] = "1"

    print("== baseline (scalar JIT) ==")
    _, doall_truth = run(DOALL_SOURCE, "jit")
    _, chain_truth = run(CHAIN_SOURCE, "jit")
    print(f"doall truth: {doall_truth[0]}   chain truth: {chain_truth[0]}")

    with tempfile.TemporaryDirectory(prefix="repro-parexec-smoke-") as tmp:
        print("== kill-doall (worker SIGKILLed mid-chunk, retried) ==")
        sentinel = os.path.join(tmp, "kill-doall")
        # Workers read the sentinel from the environment they inherit at
        # fork, so the pool must be rebuilt after arming — and discarded
        # afterwards so armed workers never leak into the next scenario.
        _discard_pool(2)
        os.environ[PAR_FAULT_SENTINEL_ENV] = f"kill:{sentinel}"
        try:
            machine, observed = run(DOALL_SOURCE, "par", workers=2)
        finally:
            del os.environ[PAR_FAULT_SENTINEL_ENV]
            _discard_pool(2)
        stats = machine.par.stats
        print(f"stats: retries={stats['retries']} "
              f"pool_rebuilds={stats['pool_rebuilds']} "
              f"commits={stats['doall_chunks']}")
        if not os.path.exists(sentinel):
            failures.append("doall fault was never injected")
        if observed != doall_truth:
            failures.append(f"doall diverged after kill: {observed!r}")
        if stats["retries"] < 1 or stats["pool_rebuilds"] < 1:
            failures.append("doall kill left no retry/rebuild trace")

        print("== kill-tls (speculative chunk killed, retries off) ==")
        sentinel = os.path.join(tmp, "kill-tls")
        _discard_pool(2)
        os.environ[PAR_FAULT_SENTINEL_ENV] = f"kill:{sentinel}"
        os.environ["REPRO_PAR_RETRIES"] = "0"
        try:
            machine, observed = run(CHAIN_SOURCE, "par", workers=2)
        finally:
            del os.environ[PAR_FAULT_SENTINEL_ENV]
            del os.environ["REPRO_PAR_RETRIES"]
            _discard_pool(2)
        stats = machine.par.stats
        print(f"stats: tls_aborts={stats['tls_aborts']} "
              f"tls_commits={stats['tls_commits']} "
              f"tls_rollbacks={stats['tls_rollbacks']}")
        if not os.path.exists(sentinel):
            failures.append("tls fault was never injected")
        if observed != chain_truth:
            failures.append(f"tls diverged after kill: {observed!r}")
        if stats["tls_aborts"] < 1:
            failures.append("tls kill left no abort trace")

    if failures:
        print("\nFAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: killed chunks retried/aborted cleanly, outputs "
          "byte-identical to the scalar baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
