#!/usr/bin/env python
"""Transform-pipeline report and soundness gate over the bundled suites.

Two halves, mirroring ``tools/crosscheck_report.py``:

1. the **unlock figure** — every benchmark compiled with the structural
   transforms (fission / peeling / fusion) off and on, post-transform
   verdicts joined back to original loops via provenance; gated on the
   transforms actually firing (a pass that silently stops applying would
   otherwise look "sound" forever);
2. the **re-verification** — the full static-vs-dynamic crosscheck with
   ``REPRO_TRANSFORM=1``, gated on ``unsound-static-doall == 0``: every
   ``STATIC_DOALL`` the transforms manufacture must survive the dynamic
   conflict check.

Exit status 0 only if both gates hold. Run via ``make transform-report``.
"""

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

# Before any repro import that might construct a framework object: the
# crosscheck half must profile the *transformed* programs.
os.environ["REPRO_TRANSFORM"] = "1"

from repro.analysis.depend import VERDICT_DOALL  # noqa: E402
from repro.bench import SuiteRunner  # noqa: E402
from repro.reporting import (  # noqa: E402
    crosscheck_suites,
    format_crosscheck,
    format_transform_figure,
    transform_suites,
)


def main():
    failures = 0

    report = transform_suites()
    print(format_transform_figure(report))
    print()
    before = report.counts_before()[VERDICT_DOALL]
    after = report.counts_after()[VERDICT_DOALL]
    if not report.transform_log:
        print("FAIL: no transform fired on any bundled benchmark")
        failures += 1
    elif after <= before:
        print(f"FAIL: transforms no longer unlock parallelism "
              f"({before} proved DOALL before, {after} after)")
        failures += 1
    else:
        print(f"ok: transforms raise proved DOALL {before} -> {after} "
              f"({len(report.unlocked)} loop(s) unlocked)")
    print()

    # The SuiteRunner below profiles with REPRO_TRANSFORM=1 (set above,
    # picked up by Loopapalooza's transform=None default), so the join
    # covers the post-transform loop population.
    crosscheck = crosscheck_suites(SuiteRunner())
    print(format_crosscheck(crosscheck))
    print()
    if crosscheck.unsound:
        print(f"FAIL: {len(crosscheck.unsound)} post-transform STATIC_DOALL "
              f"loop(s) conflicted dynamically")
        failures += 1
    else:
        print(f"ok: every post-transform STATIC_DOALL survives the dynamic "
              f"crosscheck ({len(crosscheck.rows)} loops)")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
