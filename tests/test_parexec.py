"""Parallel execution tier: chunking, dispatch, determinism, TLS
speculation, and fault recovery.

Everything here runs on the real machinery — fork-context worker pools
over shared-memory slot lanes — forced through the pool with
``REPRO_PAR_MIN_TRIP=1`` where dispatch must actually happen. The box
running CI may have a single core; the pool still works (workers just
time-share), so these are functional tests, not performance tests.
"""

from __future__ import annotations

import json

import pytest

from repro.frontend.codegen import compile_source
from repro.interp.interpreter import Interpreter, backend_from_env
from repro.interp.parexec import (
    PAR_VERSION,
    _discard_pool,
    chunk_bounds,
    default_workers,
)

DOALL_SOURCE = """
int N = 4096;
int A[4096];
int main() { int i;
  for (i = 0; i < N; i = i + 1) { A[i] = (i * 7 + 13) & 1023; }
  return (A[57] + A[4000]) & 65535; }
"""

# A[i] depends on A[i-1]: STATIC_LCD, rejected by the vectorizer, but
# kernel-shaped — the TLS tier speculates on it and every chunk after the
# first reads its predecessor's frontier write, forcing a rollback+rerun.
CHAIN_SOURCE = """
int N = 4096;
int A[4096];
int main() { int i;
  A[0] = 1;
  for (i = 1; i < N; i = i + 1) { A[i] = (A[i-1] + i) & 262143; }
  return A[4095] & 65535; }
"""


def _plain(source, backend, workers=None):
    machine = Interpreter(compile_source(source), backend=backend,
                          par_workers=workers)
    result = machine.run("main")
    return machine, (result, machine.cost, tuple(machine.output))


# -- chunking ------------------------------------------------------------------


@pytest.mark.parametrize("trip,chunks", [
    (10, 1), (10, 3), (4096, 2), (4096, 3), (7, 7), (3, 8), (1, 2),
    (4097, 4),
])
def test_chunk_bounds_partition(trip, chunks):
    bounds = chunk_bounds(trip, chunks)
    # Contiguous ascending cover of [0, trip), no empty chunks.
    assert bounds[0][0] == 0
    assert bounds[-1][1] == trip
    for (lo, hi), (nlo, _) in zip(bounds, bounds[1:]):
        assert hi == nlo
    sizes = [hi - lo for lo, hi in bounds]
    assert all(size > 0 for size in sizes)
    assert sum(sizes) == trip
    assert len(bounds) == min(trip, chunks)
    # Even split: sizes differ by at most one.
    assert max(sizes) - min(sizes) <= 1


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_PAR_WORKERS", "3")
    assert default_workers() == 3


def test_backend_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_PAR", "1")
    assert backend_from_env() == "par"
    # Kill switches outrank the parallel tier.
    monkeypatch.setenv("REPRO_NO_VEC", "1")
    assert backend_from_env() == "jit"
    monkeypatch.setenv("REPRO_NO_JIT", "1")
    assert backend_from_env() == "closure"


def test_par_version_tags_cache_key():
    from repro.interp.codegen import jit_cache_key

    module = compile_source(DOALL_SOURCE)
    function = module.functions["main"]
    vec = jit_cache_key(function, "plain", False, vectorize=True)
    par = jit_cache_key(function, "plain", False, vectorize=True,
                        parallel=True)
    # The tier tag (p{PAR_VERSION}v{VEC_VERSION} vs v{VEC_VERSION}) is
    # hashed into the key, so par and vec variants can never collide.
    assert vec != par
    assert PAR_VERSION >= 1


# -- determinism ---------------------------------------------------------------


def test_par_serial_fallback_matches_other_backends():
    """workers=1: no pool, no shared memory — the acceptance-relevant
    path on a 1-core host. Result, cost, and output must match every
    other backend exactly."""
    _, reference = _plain(DOALL_SOURCE, "jit")
    for backend in ("closure", "vec"):
        assert _plain(DOALL_SOURCE, backend)[1] == reference
    machine, observed = _plain(DOALL_SOURCE, "par", workers=1)
    assert observed == reference
    assert not machine.space.shared


def test_par_identical_at_every_worker_count(monkeypatch):
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    _, reference = _plain(DOALL_SOURCE, "jit")
    for workers in (1, 2, 3):
        _, observed = _plain(DOALL_SOURCE, "par", workers=workers)
        assert observed == reference, f"diverged at {workers} workers"


def test_par_profiles_identically_with_pool(monkeypatch):
    """Instrumented par execution (pool active) must serialize the same
    profile as the closure interpreter."""
    from repro.core.framework import Loopapalooza
    from repro.runtime.recorder import ProfilingRuntime
    from repro.runtime.serialize import profile_to_dict

    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    lp = Loopapalooza(DOALL_SOURCE, "parexec_profile", backend="closure")
    baseline = json.dumps(profile_to_dict(lp.profile()), sort_keys=True)
    runtime = ProfilingRuntime("parexec_profile")
    machine = Interpreter(lp.module, runtime, lp.instrumentation,
                          backend="par", par_workers=2)
    runtime.attach(machine)
    result = machine.run("main")
    profile = json.dumps(
        profile_to_dict(runtime.finish(machine.cost, result)),
        sort_keys=True)
    assert profile == baseline
    assert sum(machine.par_runs.values()) > 0  # the pool actually ran


# -- dispatch stats ------------------------------------------------------------


def test_doall_pool_dispatch_stats(monkeypatch):
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    machine, _ = _plain(DOALL_SOURCE, "par", workers=2)
    assert machine.space.shared
    stats = machine.par.stats
    assert stats["doall_dispatches"] > 0
    assert stats["doall_chunks"] >= 2 * stats["doall_dispatches"] \
        - stats["doall_bails"] - stats["doall_fallbacks"]
    assert stats["failures"] == 0
    assert sum(machine.par_runs.values()) > 0


def test_tls_pool_commits_and_rollbacks(monkeypatch):
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    _, reference = _plain(CHAIN_SOURCE, "jit")
    machine, observed = _plain(CHAIN_SOURCE, "par", workers=2)
    assert observed == reference
    stats = machine.par.stats
    assert stats["tls_dispatches"] > 0
    assert stats["tls_commits"] > 0
    # Every chunk after the first reads the previous chunk's last write.
    assert stats["tls_rollbacks"] > 0
    assert sum(machine.par_tls_runs.values()) > 0


def test_tls_serial_mode_never_rolls_back(monkeypatch):
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    _, reference = _plain(CHAIN_SOURCE, "jit")
    machine, observed = _plain(CHAIN_SOURCE, "par", workers=1)
    assert observed == reference
    assert machine.par.stats["tls_commits"] > 0
    assert machine.par.stats["tls_rollbacks"] == 0


# -- fault injection -----------------------------------------------------------


@pytest.fixture
def fresh_pool():
    """Fault tests arm a sentinel that workers read from their inherited
    environment, so the pool must fork after the env is set — and be
    discarded afterwards so armed workers never leak into later tests."""
    _discard_pool(2)
    yield
    _discard_pool(2)


def test_doall_worker_kill_is_retried(monkeypatch, tmp_path, fresh_pool):
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    monkeypatch.setenv("REPRO_PAR_FAULT_SENTINEL",
                       f"kill:{tmp_path / 'kill_doall'}")
    _, reference = _plain(DOALL_SOURCE, "jit")
    machine, observed = _plain(DOALL_SOURCE, "par", workers=2)
    assert observed == reference
    stats = machine.par.stats
    assert stats["pool_rebuilds"] >= 1
    assert stats["retries"] >= 1
    assert (tmp_path / "kill_doall").exists()  # the fault actually fired


def test_doall_worker_hang_is_retried(monkeypatch, tmp_path, fresh_pool):
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    monkeypatch.setenv("REPRO_PAR_TASK_TIMEOUT", "1")
    monkeypatch.setenv("REPRO_PAR_FAULT_SENTINEL",
                       f"hang:{tmp_path / 'hang_doall'}")
    _, reference = _plain(DOALL_SOURCE, "jit")
    machine, observed = _plain(DOALL_SOURCE, "par", workers=2)
    assert observed == reference
    stats = machine.par.stats
    assert stats["pool_rebuilds"] >= 1
    assert (tmp_path / "hang_doall").exists()


def test_tls_worker_kill_rolls_back_clean(monkeypatch, tmp_path,
                                          fresh_pool):
    """A killed TLS chunk must never poison memory: with retries
    disabled the speculation aborts and the scalar loop recomputes the
    exact same answer."""
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    monkeypatch.setenv("REPRO_PAR_RETRIES", "0")
    monkeypatch.setenv("REPRO_PAR_FAULT_SENTINEL",
                       f"kill:{tmp_path / 'kill_tls'}")
    _, reference = _plain(CHAIN_SOURCE, "jit")
    machine, observed = _plain(CHAIN_SOURCE, "par", workers=2)
    assert observed == reference
    stats = machine.par.stats
    assert stats["tls_aborts"] >= 1
    assert (tmp_path / "kill_tls").exists()
