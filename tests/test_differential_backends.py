"""Differential test: the closure interpreter and the block-template JIT
must produce byte-identical profiles for every bundled benchmark.

This is the backend equivalence contract in its strongest form — not just
matching results and instruction counts, but the full serialized
:class:`ProgramProfile` (loop invocation trees, conflict records, LCD value
streams and offsets, call-site summaries), compared as canonical JSON.
Every figure and table is a pure function of the profile, so equality here
means every downstream artifact is backend-independent.
"""

import json

import pytest

from repro.bench.suites import all_programs
from repro.core.framework import Loopapalooza
from repro.runtime.serialize import profile_to_dict


def _canonical_profile(program, backend):
    lp = Loopapalooza(program.source, name=program.name, backend=backend)
    text = json.dumps(profile_to_dict(lp.profile()), sort_keys=True)
    return text, lp.output


@pytest.mark.parametrize(
    "program", all_programs(), ids=lambda p: p.full_name
)
def test_backends_profile_identically(program):
    closure_profile, closure_output = _canonical_profile(program, "closure")
    jit_profile, jit_output = _canonical_profile(program, "jit")
    assert closure_profile == jit_profile
    assert closure_output == jit_output
