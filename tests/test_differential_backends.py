"""Differential test: the closure interpreter, the block-template JIT,
the vector tier, and the parallel tier must produce byte-identical
profiles for every bundled benchmark.

This is the backend equivalence contract in its strongest form — not just
matching results and instruction counts, but the full serialized
:class:`ProgramProfile` (loop invocation trees, conflict records, LCD value
streams and offsets, call-site summaries), compared as canonical JSON.
Every figure and table is a pure function of the profile, so equality here
means every downstream artifact is backend-independent — including the
vector tier's closed-form loop and memory event accounting.
"""

import json

import pytest

from repro.bench.suites import all_programs
from repro.core.framework import Loopapalooza
from repro.runtime.serialize import profile_to_dict


def _canonical_profile(program, backend):
    lp = Loopapalooza(program.source, name=program.name, backend=backend)
    text = json.dumps(profile_to_dict(lp.profile()), sort_keys=True)
    return text, lp.output


@pytest.mark.parametrize(
    "program", all_programs(), ids=lambda p: p.full_name
)
def test_backends_profile_identically(program):
    closure_profile, closure_output = _canonical_profile(program, "closure")
    jit_profile, jit_output = _canonical_profile(program, "jit")
    vec_profile, vec_output = _canonical_profile(program, "vec")
    # Default dispatch thresholds: below REPRO_PAR_MIN_TRIP the par tier
    # runs its serial path, which must still be byte-identical.
    par_profile, par_output = _canonical_profile(program, "par")
    assert closure_profile == jit_profile
    assert closure_output == jit_output
    assert jit_profile == vec_profile
    assert jit_output == vec_output
    assert vec_profile == par_profile
    assert vec_output == par_output


POOL_FORCED_PROGRAMS = [
    "eembc/matrix", "eembc/autcor", "specint2000/mcf_like",
    "specfp2000/art_like",
]


@pytest.mark.parametrize("full_name", POOL_FORCED_PROGRAMS)
def test_par_pool_profiles_identically(full_name, monkeypatch):
    """Four-way check with the worker pool actually engaged: every DOALL
    section crosses the process boundary (``REPRO_PAR_MIN_TRIP=1``), and
    the serialized profile must still match the closure interpreter."""
    from repro.bench.suites import find_program

    monkeypatch.setenv("REPRO_PAR_WORKERS", "2")
    monkeypatch.setenv("REPRO_PAR_MIN_TRIP", "1")
    program = find_program(full_name)
    closure_profile, closure_output = _canonical_profile(program, "closure")
    par_profile, par_output = _canonical_profile(program, "par")
    assert closure_profile == par_profile
    assert closure_output == par_output


@pytest.mark.parametrize(
    "backend", ["closure", "jit", "vec", "par"]
)
def test_static_doall_never_conflicts(backend):
    """Soundness of the static dependence engine against every backend: a
    loop proved STATIC_DOALL must never record a cross-iteration conflict
    in the dynamic profile, whichever interpreter produced it. This is
    also the vector tier's safety argument — its kernels only ever replace
    loops carrying that verdict."""
    from repro.analysis.depend import VERDICT_DOALL

    proved_loops = 0
    for program in all_programs():
        lp = Loopapalooza(program.source, name=program.name, backend=backend)
        dependence = lp.static_info.dependence()
        conflicts = {}
        for invocation in lp.profile().all_invocations():
            conflicts[invocation.loop_id] = (
                conflicts.get(invocation.loop_id, 0)
                + invocation.conflict_count)
        for loop_id, verdict in dependence.items():
            if verdict.verdict != VERDICT_DOALL:
                continue
            proved_loops += 1
            assert conflicts.get(loop_id, 0) == 0, (
                f"{program.full_name} {loop_id}: STATIC_DOALL but "
                f"{conflicts[loop_id]} dynamic conflict(s) on {backend}")
    # The suites must actually exercise the engine, not vacuously pass.
    assert proved_loops >= 100
