"""The vectorized kernel tier: planner bailouts, runtime guards, and
closed-form profile parity.

Every BAIL_* reason in the planner's taxonomy gets at least one test that
reaches it (the exhaustive three-way profile comparison over the bundled
benchmarks lives in test_differential_backends.py). The runtime tests pin
the tier's safety contract: a kernel either commits with byte-identical
observable state or falls back to the scalar path with zero residue.
"""

import json

import pytest

from repro.analysis.depend import DependenceAnalysis, module_memory_summaries
from repro.analysis.loop_info import LoopInfo
from repro.analysis.scev import ScalarEvolution
from repro.core.framework import Loopapalooza
from repro.core.instrument import build_instrumentation
from repro.core.static_info import ModuleStaticInfo
from repro.errors import FuelExhausted, TrapError
from repro.frontend.codegen import compile_source
from repro.interp import veccodegen
from repro.interp.interpreter import Interpreter
from repro.interp.veccodegen import (
    BAIL_ACCESS,
    BAIL_ALIAS,
    BAIL_CALL,
    BAIL_CFG,
    BAIL_HEADER,
    BAIL_HOOKS,
    BAIL_INNER,
    BAIL_INSTR,
    BAIL_IV,
    BAIL_MULTI_LATCH,
    BAIL_NOT_SIMPLIFIED,
    BAIL_NUMPY,
    BAIL_OP,
    BAIL_TRIP,
    BAIL_TRIP_SIZE,
    BAIL_TRIP_WRAP,
    BAIL_VERDICT,
    vector_decisions,
)
from repro.runtime.serialize import profile_to_dict

VEC_OK = """
int N = 64; float A[64];
int main() { int i;
  for (i = 0; i < 64; i = i + 1) { A[i] = A[i] * 0.5 + 1.0; }
  return 0; }
"""


def _decisions(source):
    return vector_decisions(compile_source(source))


def _only_reason(source):
    decisions = _decisions(source)
    assert len(decisions) == 1, decisions
    assert decisions[0]["status"] == "bailout", decisions
    return decisions[0]["reason"]


def _run(source, backend, fuel=200_000_000):
    machine = Interpreter(compile_source(source), fuel=fuel, backend=backend)
    result = machine.run("main")
    return result, machine.cost, list(machine.output)


def _canonical_profile(source, backend):
    lp = Loopapalooza(source, backend=backend)
    return json.dumps(profile_to_dict(lp.profile()), sort_keys=True), lp.output


def _plan_uninstrumented(function):
    """_plan_loop inputs for hand-picked loops of ``function``."""
    loop_info = LoopInfo(function)
    scev = ScalarEvolution(function, loop_info)
    dep = DependenceAnalysis(
        function, loop_info=loop_info, scev=scev,
        summaries=module_memory_summaries(function.module),
    )
    return loop_info, scev, dep


class TestPlannerBailouts:
    """One reachable program (or IR shape) per bailout reason. The
    planner orders its checks so each reason stays observable behind the
    previous ones; these tests are the proof."""

    def test_numpy_unavailable(self, monkeypatch):
        monkeypatch.setattr(veccodegen, "_np", None)
        assert _only_reason(VEC_OK) == BAIL_NUMPY
        assert not veccodegen.vec_available()

    def test_contains_inner_loop(self):
        # plan_vector_loops only offers innermost loops, so the outer-loop
        # bail is exercised by invoking the planner on one directly.
        source = """
        int A[64];
        int main() { int i; int j;
          for (i = 0; i < 8; i = i + 1) {
            for (j = 0; j < 8; j = j + 1) { A[i * 8 + j] = i + j; }
          }
          return 0; }
        """
        function = compile_source(source).get_function("main")
        loop_info, scev, dep = _plan_uninstrumented(function)
        outer = [
            loop for loop in loop_info.loops_in_postorder() if loop.subloops
        ][0]
        plan, reason = veccodegen._plan_loop(
            outer, loop_info.cfg, scev, dep, None, False
        )
        assert plan is None and reason == BAIL_INNER

    def test_multi_latch_two_latches(self):
        # The frontend always emits single-latch loops, so the multi-latch
        # bail is exercised on hand-built IR: one header with two distinct
        # backedge sources.
        from repro.ir import I32, IRBuilder, Module

        module = Module("twolatch")
        function = module.add_function("f", I32, [])
        entry = function.append_block("entry")
        header = function.append_block("header")
        body = function.append_block("body")
        latch_a = function.append_block("latch_a")
        latch_b = function.append_block("latch_b")
        exit_block = function.append_block("exit")
        builder = IRBuilder(entry)
        builder.br(header)
        builder.position_at_end(header)
        iv = builder.phi(I32, name="i")
        cond = builder.icmp("slt", iv, builder.const_int(8))
        builder.condbr(cond, body, exit_block)
        builder.position_at_end(body)
        odd = builder.icmp(
            "slt", builder.srem(iv, builder.const_int(2)),
            builder.const_int(1),
        )
        builder.condbr(odd, latch_a, latch_b)
        builder.position_at_end(latch_a)
        next_a = builder.add(iv, builder.const_int(1))
        builder.br(header)
        builder.position_at_end(latch_b)
        next_b = builder.add(iv, builder.const_int(2))
        builder.br(header)
        builder.position_at_end(exit_block)
        builder.ret(iv)
        iv.add_incoming(builder.const_int(0), entry)
        iv.add_incoming(next_a, latch_a)
        iv.add_incoming(next_b, latch_b)

        loop_info, scev, dep = _plan_uninstrumented(function)
        loops = [
            loop for loop in loop_info.loops_in_postorder()
            if not loop.subloops
        ]
        assert len(loops) == 1
        plan, reason = veccodegen._plan_loop(
            loops[0], loop_info.cfg, scev, dep, None, False
        )
        assert plan is None and reason == BAIL_MULTI_LATCH

    def test_complex_header(self):
        # The compare feeds off `i + 1`, so the header holds loop-variant
        # arithmetic beyond the canonical phi/icmp/condbr shape.
        source = """
        int A[32];
        int main() { int i;
          for (i = 0; i + 1 < 10; i = i + 1) { A[i] = i; }
          return 0; }
        """
        assert _only_reason(source) == BAIL_HEADER

    def test_control_flow_in_body(self):
        source = """
        int A[32];
        int main() { int i;
          for (i = 0; i < 32; i = i + 1) {
            if (i > 4) { A[i] = 1; } else { A[i] = 2; }
          }
          return 0; }
        """
        assert _only_reason(source) == BAIL_CFG

    def test_contains_call_outside_whitelist(self):
        # sin is a real intrinsic but not vector-whitelisted: NumPy and
        # libm disagree in the last ulp, which would break profile parity.
        source = """
        float A[32];
        int main() { int i;
          for (i = 0; i < 32; i = i + 1) { A[i] = sin((float)i); }
          return 0; }
        """
        assert _only_reason(source) == BAIL_CALL

    def test_unsupported_op(self):
        source = """
        int A[32];
        int main() { int i;
          for (i = 0; i < 32; i = i + 1) { A[i] = i << 3; }
          return 0; }
        """
        assert _only_reason(source) == BAIL_OP

    def test_irregular_instrumentation_reduction(self):
        # A tracked reduction ships a latch value per iteration; the
        # closed form produces no such event stream.
        source = """
        float A[32];
        int main() { int i; float s; s = 0.0;
          for (i = 0; i < 32; i = i + 1) { s = s + A[i]; }
          print_float(s); return 0; }
        """
        assert _only_reason(source) == BAIL_INSTR

    def test_lcd_hooks_in_loop(self):
        # Doctor the instrumentation plan so one body instruction demands
        # a per-iteration use hook: the closed form cannot replay those.
        from repro.ir import Store

        module = compile_source(VEC_OK)
        function = module.get_function("main")
        instrumentation = build_instrumentation(ModuleStaticInfo(module))
        plan = instrumentation.get("main")
        store = next(
            instruction
            for block in function.blocks
            for instruction in block.instructions
            if isinstance(instruction, Store)
        )
        plan.use_hooks[id(store)] = [("use", "doctored")]
        kernels, decisions = veccodegen.plan_vector_loops(
            function, plan, True
        )
        assert not kernels
        assert decisions == [{
            "loop_id": decisions[0]["loop_id"], "status": "bailout",
            "reason": BAIL_HOOKS, "trip": None,
        }]

    def test_no_constant_trip_count(self):
        # `!=` exits are neither statically counted nor runtime-provable
        # (a stride-2 IV could step over the bound and wrap forever).
        source = """
        int n = 32; int A[64];
        int main() { int i;
          for (i = 0; i != n; i = i + 1) { A[i] = i; }
          return 0; }
        """
        assert _only_reason(source) == BAIL_TRIP

    def test_wrap_unprovable_bounds(self, monkeypatch):
        # SCEV folds the trip count of this loop exactly, but the final
        # IV value 2147483648 overflows i32 — the scalar sequence wraps
        # and keeps running, so the static count is a lie. The runtime
        # guard normally picks such loops up; with that fallback stubbed
        # out, the planner must refuse the static count outright.
        source = """
        int A[8];
        int main() { int i; int k; k = 0;
          for (i = 2147483640; i < 2147483646; i = i + 4) {
            A[k] = i; k = k + 1;
          }
          return k; }
        """
        monkeypatch.setattr(
            veccodegen, "_trip_runtime", lambda *args, **kwargs: None
        )
        assert _only_reason(source) == BAIL_TRIP_WRAP

    def test_oversized_trip(self):
        source = """
        int A[32];
        int main() { int i;
          for (i = 0; i < 3000000; i = i + 1) { A[i & 31] = i; }
          return 0; }
        """
        assert _only_reason(source) == BAIL_TRIP_SIZE

    def test_non_affine_iv(self):
        # A geometric second phi alongside the counted one. Uninstrumented
        # planning is used so the reduction's instrumentation pattern does
        # not bail first.
        source = """
        int A[32];
        int main() { int i; int s; s = 1;
          for (i = 0; i < 16; i = i + 1) { A[i] = s; s = s * 3; }
          print_int(s); return 0; }
        """
        function = compile_source(source).get_function("main")
        kernels, decisions = veccodegen.plan_vector_loops(
            function, None, False
        )
        assert not kernels
        assert [d["reason"] for d in decisions] == [BAIL_IV]

    def test_non_affine_access(self):
        source = """
        float A[80];
        int main() { int i;
          for (i = 0; i < 8; i = i + 1) { A[i * i] = 1.0; }
          return 0; }
        """
        assert _only_reason(source) == BAIL_ACCESS

    def test_intra_iteration_alias(self):
        # p may alias A: the gather-everything/scatter-everything
        # reordering could read a cell the same iteration already wrote.
        source = """
        int N = 16; float A[16]; float B[16];
        void kernel(float *p) { int i;
          for (i = 0; i < 16; i = i + 1) { p[i] = 0.5; B[i] = A[i] * 0.5; }
        }
        int main() { kernel(A); return 0; }
        """
        assert _only_reason(source) == BAIL_ALIAS

    def test_not_proved_doall(self):
        source = """
        float A[16];
        int main() { int i;
          for (i = 1; i < 16; i = i + 1) { A[i] = A[i - 1] + 1.0; }
          return 0; }
        """
        assert _only_reason(source) == BAIL_VERDICT

    def test_vectorizable_loop_plans_clean(self):
        decisions = _decisions(VEC_OK)
        assert decisions == [{
            "loop_id": decisions[0]["loop_id"], "status": "vectorized",
            "reason": None, "trip": 64,
        }]


class TestRuntimeCommit:
    """Kernels that commit: observable state byte-identical to scalar."""

    def test_vec_runs_recorded(self):
        machine = Interpreter(compile_source(VEC_OK), backend="vec")
        machine.run("main")
        assert list(machine.vec_runs.values()) == [1]
        assert not machine.vec_bailouts

    def test_scalar_jit_never_runs_kernels(self):
        machine = Interpreter(compile_source(VEC_OK), backend="jit")
        machine.run("main")
        assert not machine.vec_runs and not machine.vec_bailouts

    def test_fuel_accounting_is_exact(self):
        _, cost, _ = _run(VEC_OK, "closure")
        assert _run(VEC_OK, "vec", fuel=cost)[1] == cost
        with pytest.raises(FuelExhausted):
            _run(VEC_OK, "vec", fuel=cost - 1)

    def test_runtime_trip_count_commits(self):
        source = """
        int n = 200; float A[256];
        int main() { int i;
          for (i = 0; i < n; i = i + 1) { A[i] = (float)i * 0.5; }
          return 0; }
        """
        decisions = _decisions(source)
        assert decisions[0]["status"] == "vectorized"
        assert decisions[0]["trip"] == "runtime"
        machine = Interpreter(compile_source(source), backend="vec")
        machine.run("main")
        assert list(machine.vec_runs.values()) == [1]
        assert _canonical_profile(source, "vec") == \
            _canonical_profile(source, "closure")

    def test_runtime_trip_count_zero_iterations(self):
        source = """
        int n = 0; float A[256];
        int main() { int i;
          for (i = 0; i < n; i = i + 1) { A[i] = (float)i * 0.5; }
          return 0; }
        """
        machine = Interpreter(compile_source(source), backend="vec")
        machine.run("main")
        # Guard rejects trip 0; the scalar loop runs its zero iterations.
        assert not machine.vec_runs and not machine.vec_bailouts
        assert _run(source, "vec") == _run(source, "closure")


class TestI32Wraparound:
    """Two's-complement parity inside kernels (satellite: wraparound)."""

    def test_mul_add_overflow_matches_scalar(self):
        source = """
        int A[64];
        int main() { int i; int s; s = 0;
          for (i = 0; i < 64; i = i + 1) {
            A[i] = i * 1000000007 + 2000000000;
          }
          for (i = 0; i < 64; i = i + 1) { s = s ^ A[i]; }
          print_int(s); return 0; }
        """
        machine = Interpreter(compile_source(source), backend="vec")
        machine.run("main")
        assert machine.vec_runs  # the store loop really went vector
        assert _run(source, "vec") == _run(source, "closure")
        assert _canonical_profile(source, "vec") == \
            _canonical_profile(source, "closure")

    def test_sdiv_srem_int_min_by_minus_one(self):
        # INT_MIN / -1 overflows in C; this machine defines it as the
        # wrapped quotient. The kernel must agree lane by lane.
        source = """
        int d = 1;
        int Q[8]; int R[8];
        int main() { int i; int m;
          m = (0 - 2147483647) - 1; d = 0 - 1;
          for (i = 0; i < 8; i = i + 1) {
            Q[i] = (m + i) / d; R[i] = (m + i) % d;
          }
          print_int(Q[0]); print_int(R[0]);
          print_int(Q[3]); print_int(R[3]);
          return 0; }
        """
        result, _, output = _run(source, "vec")
        assert result == 0
        assert output == [-2147483648, 0, 2147483645, 0]
        machine = Interpreter(compile_source(source), backend="vec")
        machine.run("main")
        assert machine.vec_runs
        assert _canonical_profile(source, "vec") == \
            _canonical_profile(source, "closure")

    def test_wrap_guard_rejects_overflowing_iv(self):
        # SCEV says trip 2, but the scalar IV wraps past INT_MAX and the
        # loop keeps running until the store goes out of bounds. The
        # runtime guard (final IV must fit i32) rejects the kernel, so
        # the vec tier reproduces the scalar trap exactly.
        source = """
        int A[8];
        int main() { int i; int k; k = 0;
          for (i = 2147483640; i < 2147483646; i = i + 4) {
            A[k] = i; k = k + 1;
          }
          return k; }
        """
        decisions = _decisions(source)
        assert decisions[0]["status"] == "vectorized"
        assert decisions[0]["trip"] == "runtime"
        costs = {}
        for backend in ("closure", "vec"):
            machine = Interpreter(compile_source(source), backend=backend)
            with pytest.raises(TrapError, match="invalid address 8"):
                machine.run("main")
            costs[backend] = machine.cost
            assert not machine.vec_runs
        assert costs["closure"] == costs["vec"]


class TestRuntimeBailouts:
    """Kernels that start and then bail: the scalar replay must leave no
    trace of the attempt beyond the bailout counter."""

    def test_division_by_zero_traps_identically(self):
        source = """
        int A[16];
        int main() { int i;
          for (i = 0; i < 16; i = i + 1) { A[i] = 100 / (8 - i); }
          return 0; }
        """
        costs = {}
        for backend in ("closure", "vec"):
            machine = Interpreter(compile_source(source), backend=backend)
            with pytest.raises(TrapError, match="division by zero"):
                machine.run("main")
            costs[backend] = machine.cost
        assert costs["closure"] == costs["vec"]
        machine = Interpreter(compile_source(source), backend="vec")
        with pytest.raises(TrapError):
            machine.run("main")
        assert list(machine.vec_bailouts.values()) == [1]
        assert not machine.vec_runs

    def test_sqrt_of_negative_traps_identically(self):
        # np.sqrt would return NaN where the scalar tier traps; the
        # kernel bails on any negative lane and the scalar replay
        # produces the trap at the exact scalar cost.
        source = """
        float B[4];
        int main() { int i;
          for (i = 0; i < 4; i = i + 1) { B[i] = sqrt(1.0 - (float)i); }
          return 0; }
        """
        costs = {}
        for backend in ("closure", "vec"):
            machine = Interpreter(compile_source(source), backend=backend)
            with pytest.raises(TrapError, match="math domain error"):
                machine.run("main")
            costs[backend] = machine.cost
            if backend == "vec":
                assert list(machine.vec_bailouts.values()) == [1]
        assert costs["closure"] == costs["vec"]


class TestIntrinsicParity:
    """The whitelisted intrinsics are bit-identical between NumPy kernels
    and the scalar implementations, profiles included."""

    INTRINSIC_MIX = """
    int H[64]; float Z[64]; int M[64]; float S[64]; float F[64];
    int main() { int i;
      for (i = 0; i < 64; i = i + 1) {
        H[i] = hash_i32(i * 7 + 3);
        Z[i] = noise_f64(i) - 0.5;
        M[i] = imax(i - 32, imin(i, 16)) + iabs(i - 40);
        S[i] = sqrt((float)i + 1.0);
        F[i] = fmax(fmin((float)i, 31.5), 2.5)
             + fabs((float)i - 10.0) + floor((float)i / 3.0);
      }
      return 0; }
    """

    def test_intrinsic_loop_vectorizes(self):
        machine = Interpreter(
            compile_source(self.INTRINSIC_MIX), backend="vec"
        )
        machine.run("main")
        assert list(machine.vec_runs.values()) == [1]
        assert not machine.vec_bailouts

    def test_intrinsic_profiles_identical(self):
        assert _canonical_profile(self.INTRINSIC_MIX, "vec") == \
            _canonical_profile(self.INTRINSIC_MIX, "closure")


class TestLoopKernelSuite:
    """The loop-throughput bench suite must stay honest: every kernel
    vectorizes (otherwise it measures scalar-vs-scalar) and the tier
    timing machinery reports it faithfully."""

    def test_every_kernel_vectorizes(self):
        from repro.bench.loop_kernels import loop_kernels
        from repro.interp.veccodegen import vector_decisions

        for kernel in loop_kernels():
            decisions = vector_decisions(compile_source(kernel.source))
            vectorized = [
                d for d in decisions if d["status"] == "vectorized"
            ]
            assert vectorized, (
                f"{kernel.name}: no vectorized loop "
                f"(decisions: {decisions})"
            )

    def test_kernels_commit_on_vec_tier(self):
        from repro.bench.loop_kernels import REPS, find_kernel

        machine = Interpreter(
            compile_source(find_kernel("match_distance").source),
            backend="vec",
        )
        machine.run("main")
        assert list(machine.vec_runs.values()) == [REPS]
        assert not machine.vec_bailouts

    def test_find_kernel_unknown_raises(self):
        from repro.bench.loop_kernels import find_kernel

        with pytest.raises(KeyError):
            find_kernel("no-such-kernel")


class TestTierBench:
    def test_parse_tiers(self):
        from repro.bench.tiers import parse_tiers

        assert parse_tiers("closure,jit,vec") == ("closure", "jit", "vec")
        assert parse_tiers(" jit , vec ") == ("jit", "vec")
        with pytest.raises(ValueError, match="unknown tier"):
            parse_tiers("jit,turbo")
        with pytest.raises(ValueError, match="at least two"):
            parse_tiers("vec")

    def test_time_source_runs_each_tier(self):
        from repro.bench.tiers import time_source

        source = "int main() { int i; int s; s = 0;" \
                 " for (i = 0; i < 50; i = i + 1) { s = s + i; }" \
                 " return s; }"
        for tier in ("closure", "jit", "vec"):
            assert time_source(source, tier, repeats=1) > 0.0

    def test_speedup_columns_and_bench_row(self):
        from repro.bench.tiers import (
            _finish_row,
            bench_row,
            speedup_geomeans,
        )

        tiers = ("jit", "vec")
        rows = [
            _finish_row(
                {"name": "a", "times": {"jit": 0.4, "vec": 0.1},
                 "speedups": {}},
                tiers,
            ),
            _finish_row(
                {"name": "b", "times": {"jit": 0.9, "vec": 0.1},
                 "speedups": {}},
                tiers,
            ),
        ]
        result = {"mode": "loops", "tiers": list(tiers), "rows": rows}
        means = speedup_geomeans(result)
        assert means["jit_vs_vec"] == 6.0  # geomean(4, 9)
        row = bench_row(result, repeats=3)
        assert row["kind"] == "tier_bench"
        assert row["geomeans"]["jit_vs_vec"] == 6.0

    def test_format_tier_table_flags_scalar_rows(self):
        from repro.bench.tiers import format_tier_table

        result = {
            "mode": "loops",
            "tiers": ["jit", "vec"],
            "rows": [{
                "name": "scalar_kernel",
                "vectorized": False,
                "times": {"jit": 0.2, "vec": 0.2},
                "speedups": {"jit_vs_vec": 1.0},
            }],
        }
        assert "[NOT VECTORIZED]" in format_tier_table(result)


class TestVecTelemetry:
    def _summary(self):
        from repro.interp.veccodegen import summarize_vec_decisions

        return summarize_vec_decisions([
            {"loop_id": "f.a", "status": "vectorized", "reason": None,
             "trip": 64},
            {"loop_id": "f.b", "status": "vectorized", "reason": None,
             "trip": "runtime"},
            {"loop_id": "f.c", "status": "bailout",
             "reason": "contains-call", "trip": None},
            {"loop_id": "f.d", "status": "bailout",
             "reason": "contains-call", "trip": None},
        ])

    def test_summarize_vec_decisions(self):
        summary = self._summary()
        assert summary == {
            "loops": 4, "vectorized": 2, "static_trip": 1,
            "runtime_trip": 1, "bailouts": {"contains-call": 2},
        }

    def test_manifest_round_trip_and_formatting(self, tmp_path):
        from repro.runtime.telemetry import (
            RunTelemetry,
            format_run_summary,
        )

        telemetry = RunTelemetry.create(root=tmp_path, run_id="vec-run")
        telemetry.record_vec_decisions(self._summary())
        telemetry.finish()
        assert telemetry.summary()["vec_decisions"]["vectorized"] == 2

        resumed = RunTelemetry.resume("vec-run", root=tmp_path)
        assert resumed.summary()["vec_decisions"] == self._summary()
        text = format_run_summary(resumed.summary())
        assert "2/4 innermost loops vectorized" in text
        assert "bailout contains-call: 2" in text
