"""Shared fixtures for the test suite.

Profiling all 48 benchmarks takes ~10 s, so the suite runner and a few
commonly-reused compiled kernels are session-scoped.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.bench.suites import SuiteRunner
from repro.core.framework import Loopapalooza

# One shared hypothesis profile for the whole suite — individual test
# files must not re-declare deadline/derandomize in per-test ``settings``
# (a per-test ``max_examples`` override is fine). ``deadline=None``
# because compile+profile examples legitimately take tens of
# milliseconds; derandomized under CI (and by default) so the suite
# replays the same example corpus on every run. Opt into fresh random
# exploration locally with REPRO_HYPOTHESIS_PROFILE=repro-explore.
settings.register_profile("repro-ci", deadline=None, derandomize=True)
settings.register_profile("repro-explore", deadline=None,
                          derandomize=False)
settings.load_profile(
    "repro-ci" if os.environ.get("CI")
    else os.environ.get("REPRO_HYPOTHESIS_PROFILE", "repro-ci")
)


@pytest.fixture(scope="session")
def runner():
    """A shared SuiteRunner so benchmark profiles are computed once."""
    return SuiteRunner()


@pytest.fixture(scope="session")
def doall_kernel():
    """A trivially parallel loop (calls a pure intrinsic)."""
    return Loopapalooza(
        """
        int N = 120;
        int A[120];
        int main() {
          int i;
          for (i = 0; i < N; i = i + 1) { A[i] = hash_i32(i); }
          return A[7] & 255;
        }
        """,
        "doall_kernel",
    )


@pytest.fixture(scope="session")
def chain_kernel():
    """A frequent memory-LCD loop (A[i] depends on A[i-1])."""
    return Loopapalooza(
        """
        int N = 120;
        int A[120];
        int main() {
          int i;
          A[0] = 1;
          for (i = 1; i < N; i = i + 1) { A[i] = A[i-1] + i; }
          return A[119] & 65535;
        }
        """,
        "chain_kernel",
    )


@pytest.fixture(scope="session")
def reduction_kernel():
    """A reduction-bound loop plus an independent producer loop."""
    return Loopapalooza(
        """
        int N = 150;
        float X[150];
        float S = 0.0;
        int main() {
          int i;
          float acc = 0.0;
          for (i = 0; i < N; i = i + 1) { X[i] = noise_f64(i); }
          for (i = 0; i < N; i = i + 1) { acc = acc + X[i]; }
          S = acc;
          return (int)(acc * 8.0);
        }
        """,
        "reduction_kernel",
    )
