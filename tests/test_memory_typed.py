"""Typed slot memory vs the list-backed reference, instruction for
instruction.

:class:`TypedAddressSpace` stores slots in int64/float64 NumPy lanes (so
the vector and parallel tiers can gather/scatter without boxing) but must
be observably identical to the list-backed :class:`AddressSpace` —
including the warts: the stack-reuse zeroing quirk (``allocate`` zeroes
only beyond the high-water mark when growing), i32 wraparound and INT_MIN
division at the instruction layer above it, and float NaN round-tripping
through the float lane.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import TrapError
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import Interpreter
from repro.interp.memory import AddressSpace, TypedAddressSpace


def _run(source, typed, monkeypatch, backend="jit"):
    if typed:
        monkeypatch.setenv("REPRO_TYPED_MEMORY", "1")
    else:
        monkeypatch.delenv("REPRO_TYPED_MEMORY", raising=False)
    machine = Interpreter(compile_source(source), backend=backend)
    assert machine.space.typed is typed
    try:
        result = machine.run("main")
    except TrapError as trap:
        return ("trap", str(trap), tuple(machine.output))
    return (result, machine.cost, tuple(machine.output))


I32_WRAP_SOURCE = """
int main() { int x; int i; int acc;
  x = 2147483647; acc = 0;
  for (i = 0; i < 8; i = i + 1) { x = x + 1; acc = acc ^ x; }
  print_int(x); print_int(acc);
  return x & 255; }
"""

INT_MIN_DIV_SOURCE = """
int main() { int a; int b; int q; int r;
  a = 0 - 2147483647; a = a - 1;
  b = 0 - 1;
  q = a / b; r = a % b;
  print_int(q); print_int(r);
  return (q ^ r) & 65535; }
"""

STACK_REUSE_SOURCE = """
int scribble(int k) { int B[32]; int i;
  for (i = 0; i < 32; i = i + 1) { B[i] = k * i + 7; }
  return B[31]; }
int probe() { int C[48]; int i; int acc;
  acc = 0;
  for (i = 0; i < 48; i = i + 1) { acc = acc + C[i]; }
  return acc; }
int main() { int s;
  s = scribble(3);
  print_int(probe());
  return s & 255; }
"""


@pytest.mark.parametrize("source,name", [
    (I32_WRAP_SOURCE, "i32_wrap"),
    (INT_MIN_DIV_SOURCE, "int_min_div"),
    (STACK_REUSE_SOURCE, "stack_reuse"),
])
@pytest.mark.parametrize("backend", ["jit", "closure"])
def test_typed_memory_program_equivalence(source, name, backend,
                                          monkeypatch):
    reference = _run(source, typed=False, monkeypatch=monkeypatch,
                     backend=backend)
    observed = _run(source, typed=True, monkeypatch=monkeypatch,
                    backend=backend)
    assert observed == reference, f"{name} diverged on {backend}"


# -- direct API equivalence ----------------------------------------------------


def _equal_values(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return type(a) is type(b) and a == b


INTERESTING_INTS = [0, 1, -1, 2**31 - 1, -(2**31), 2**63 - 1, -(2**63),
                    1023, -4096]
INTERESTING_FLOATS = [0.0, -0.0, 1.5, -2.25, float("nan"), float("inf"),
                      float("-inf"), 1e300, 5e-324]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_op_sequences_match_list_backed(seed):
    """Mirror a random allocate/store/load/release trace on both spaces;
    every load must agree (NaN-aware), including stale values exposed by
    the partial-reuse allocation quirk."""
    rng = random.Random(seed)
    reference = AddressSpace()
    typed = TypedAddressSpace()
    bases = []
    for step in range(400):
        op = rng.random()
        sp = reference._stack_pointer
        if op < 0.30 or sp == 0:
            size = rng.randint(1, 16)
            zero = rng.choice([0, 0.0])
            a = reference.allocate(size, zero, None)
            b = typed.allocate(size, zero, None)
            assert a == b
            bases.append(a)
        elif op < 0.60:
            address = rng.randrange(sp)
            value = rng.choice(
                INTERESTING_INTS if rng.random() < 0.5
                else INTERESTING_FLOATS)
            reference.store(address, value)
            typed.store(address, value)
        elif op < 0.90:
            address = rng.randrange(sp)
            assert _equal_values(reference.load(address),
                                 typed.load(address)), (
                f"seed {seed} step {step} addr {address}")
        elif bases:
            index = rng.randrange(len(bases))
            base = bases[index]
            reference.release_to(base)
            typed.release_to(base)
            del bases[index:]
    # Full final sweep of the live stack.
    for address in range(reference._stack_pointer):
        assert _equal_values(reference.load(address), typed.load(address))


def test_typed_rejects_out_of_range_ints():
    space = TypedAddressSpace()
    space.allocate(1, 0, None)
    with pytest.raises(TrapError):
        space.store(0, 1 << 63)
    with pytest.raises(TrapError):
        space.store(0, -(1 << 63) - 1)


def test_nan_and_signed_zero_round_trip():
    space = TypedAddressSpace()
    space.allocate(2, 0.0, None)
    space.store(0, float("nan"))
    space.store(1, -0.0)
    assert math.isnan(space.load(0))
    value = space.load(1)
    assert value == 0.0 and math.copysign(1.0, value) == -1.0


# -- shared-memory lifecycle ---------------------------------------------------


def test_shared_segment_attach_reads_parent_values():
    parent = TypedAddressSpace(shared=True)
    parent.allocate(8, 0, None)
    for offset in range(8):
        parent.store(offset, offset * 11 if offset % 2 else float(offset))
    name, capacity, generation = parent.export_handle()
    # untrack=False: this "worker" shares the parent's resource tracker
    # (same process), where unregistering would erase the parent's own
    # registration — exactly the fork-context worker contract.
    view = TypedAddressSpace.attach(name, capacity,
                                    parent._stack_pointer,
                                    parent.global_limit, untrack=False)
    try:
        for offset in range(8):
            assert _equal_values(view.load(offset), parent.load(offset))
    finally:
        view.detach()
    parent.close()


def test_shared_growth_bumps_generation():
    parent = TypedAddressSpace(shared=True, capacity=64)
    assert parent.generation == 0
    parent.allocate(200, 0, None)  # forces a segment reallocation
    assert parent.generation == 1
    parent.store(150, 42)
    assert parent.load(150) == 42
    parent.close()
