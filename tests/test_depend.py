"""Static loop-carried dependence engine tests (analysis.depend).

Every end-to-end case pins the verdict of a small program; the soundness
side (STATIC_DOALL never conflicts dynamically) is covered separately by
test_differential_backends.py and `repro crosscheck`.
"""

import pytest

from repro.analysis import LoopInfo, ScalarEvolution
from repro.analysis.depend import (
    ARGS_OBJECT,
    REG_COMPUTABLE,
    REG_NONCOMPUTABLE,
    REG_REDUCTION,
    UNKNOWN_OBJECT,
    VERDICT_DOALL,
    VERDICT_LCD,
    VERDICT_UNKNOWN,
    DependenceAnalysis,
    _stride_multiples_in,
    analyze_module,
    classify_header_phis,
    module_memory_summaries,
)
from repro.frontend import compile_source
from repro.ir.values import GlobalVariable


def verdicts(source):
    """{loop_id: LoopDependence} for a source snippet."""
    return analyze_module(compile_source(source))


def only(deps):
    assert len(deps) == 1, f"expected a single loop, got {sorted(deps)}"
    return next(iter(deps.values()))


class TestSingleLoopVerdicts:
    def test_elementwise_is_doall(self):
        dep = only(verdicts(
            """
            int A[64]; int B[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i] = B[i] + 1; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_DOALL
        assert dep.describe() == "STATIC_DOALL"
        assert dep.reasons == ()
        assert dep.tested_pairs > 0

    def test_distance_one_recurrence(self):
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 1; i < 64; i = i + 1) { A[i] = A[i-1] + 1; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_LCD
        assert dep.distance == 1
        assert dep.describe() == "STATIC_LCD(dist=1)"

    def test_larger_constant_distance(self):
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 4; i < 64; i = i + 1) { A[i] = A[i-4] + 1; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_LCD
        assert dep.distance == 4

    def test_ziv_accumulator_cell(self):
        # Loop-invariant address read+written every iteration: the ZIV
        # test proves a distance-1 carried dependence.
        dep = only(verdicts(
            """
            int S[4]; int A[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { S[0] = S[0] + A[i]; }
              return S[0];
            }
            """))
        assert dep.verdict == VERDICT_LCD
        assert dep.distance == 1

    def test_negative_stride_recurrence(self):
        # Descending IV: trip count is not computable for this shape, but
        # strong SIV still pins the exact distance from the strides alone.
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 62; i >= 0; i = i - 1) { A[i] = A[i+1] + 1; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_LCD
        assert dep.distance == 1

    def test_even_odd_interleave_is_doall(self):
        # A[2i] written, A[2i+1] read: equal strides, odd delta — the
        # strong-SIV residue test proves independence.
        dep = only(verdicts(
            """
            int A[128];
            int main() {
              for (int i = 0; i < 63; i = i + 1) { A[2*i] = A[2*i+1]; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_DOALL

    def test_unequal_strides_stay_unknown(self):
        # A[2i] vs A[i] genuinely collide at varying distances; the engine
        # must not claim DOALL, and the reason names both accesses.
        dep = only(verdicts(
            """
            int A[128];
            int main() {
              for (int i = 0; i < 63; i = i + 1) { A[2*i] = A[i] + 1; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_UNKNOWN
        assert any("unequal strides" in reason for reason in dep.reasons)

    def test_wrapping_index_range_refused(self):
        # stride * trip exceeds i32: the indices may wrap at run time, so
        # no conclusion is sound. (Analysis only — never executed.)
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i*134217728] = i; }
              return 0;
            }
            """))
        assert dep.verdict == VERDICT_UNKNOWN
        assert any("wrap" in reason for reason in dep.reasons)

    def test_small_stride_same_shape_is_doall(self):
        # Control for the wrap guard: same loop, sane stride.
        dep = only(verdicts(
            """
            int A[256];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i*4] = i; }
              return 0;
            }
            """))
        assert dep.verdict == VERDICT_DOALL


class TestNestedLoops:
    NEST_TILED = """
        int A[64];
        int main() {
          for (int i = 0; i < 8; i = i + 1)
            for (int j = 0; j < 8; j = j + 1)
              A[i*8+j] = i + j;
          return A[0];
        }
    """

    NEST_OVERLAPPING = """
        int A[64];
        int main() {
          for (int i = 0; i < 8; i = i + 1)
            for (int j = 0; j < 8; j = j + 1)
              A[i*4+j] = i + j;
          return A[0];
        }
    """

    def test_disjoint_rows_prove_both_levels(self):
        # A[i*8+j], j in [0,7]: each outer iteration touches its own row,
        # so the outer loop is DOALL despite the inner-IV span (MIV case);
        # the inner loop is trivially DOALL too.
        deps = verdicts(self.NEST_TILED)
        assert len(deps) == 2
        assert {d.verdict for d in deps.values()} == {VERDICT_DOALL}

    def test_overlapping_rows_carry_an_exact_outer_distance(self):
        # A[i*4+j], j in [0,7]: rows i and i+1 share cells (4·k lands in
        # the inner window [-7, 7] only for k = ±1), so the outer loop is
        # LCD at exactly distance 1 — a precise verdict where innermost-only
        # analysis could say nothing. The inner loop is still DOALL.
        deps = verdicts(self.NEST_OVERLAPPING)
        by_depth = sorted(deps.items())  # for.cond1 (outer) < for.cond5
        outer, inner = by_depth[0][1], by_depth[1][1]
        assert outer.verdict == VERDICT_LCD
        assert outer.distance == 1
        assert outer.distances == (1,)
        assert inner.verdict == VERDICT_DOALL


class TestCallsAndSummaries:
    def test_pure_reader_callee_keeps_doall(self):
        deps = verdicts(
            """
            int A[64]; int B[64];
            int peek(int i) { return B[i]; }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i] = peek(i); }
              return A[0];
            }
            """)
        main_loops = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert len(main_loops) == 1
        assert main_loops[0].verdict == VERDICT_DOALL

    def test_affine_writer_callee_proves_doall(self):
        # poke's access-function summary (@A[arg0]) translates through the
        # call site into a stride-1 footprint: each iteration writes its
        # own cell, so the calling loop is DOALL despite the callee write.
        deps = verdicts(
            """
            int A[64];
            void poke(int i, int v) { A[i] = v; }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { poke(i, i); }
              return A[0];
            }
            """)
        main_loops = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main_loops[0].verdict == VERDICT_DOALL

    def test_nonaffine_writer_callee_is_conservative(self):
        # A data-dependent subscript in the callee defeats the access
        # summary; the loop falls back to the whole-object footprint.
        deps = verdicts(
            """
            int A[64]; int IDX[64];
            void poke(int i, int v) { A[IDX[i]] = v; }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { poke(i, i); }
              return A[0];
            }
            """)
        main_loops = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main_loops[0].verdict == VERDICT_UNKNOWN
        assert any("whole-object" in r for r in main_loops[0].reasons)

    def test_intrinsic_without_memory_traffic_is_invisible(self):
        # rand() is side-effecting but issues no modeled memory accesses,
        # matching the dynamic tracker which records none for it.
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i] = rand(); }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_DOALL

    def test_module_memory_summaries(self):
        module = compile_source(
            """
            int G[8];
            int reader() { return G[1]; }
            void writer(int* p) { p[0] = 7; }
            int main() { writer(G); return reader(); }
            """)
        summaries = module_memory_summaries(module)
        reader = summaries[module.get_function("reader")]
        writer = summaries[module.get_function("writer")]
        main = summaries[module.get_function("main")]
        g = module.globals["G"]
        assert isinstance(g, GlobalVariable)
        assert reader.reads == {g} and reader.writes == set()
        assert writer.writes == {ARGS_OBJECT}
        # main translates writer's ARGS_OBJECT through the call site.
        assert g in main.writes
        assert UNKNOWN_OBJECT not in main.writes
        assert not main.is_opaque and main.touches_memory


class TestPrivatization:
    def test_in_loop_alloca_is_iteration_private(self):
        # The runtime reborn-per-iteration cactus-stack rule, mirrored
        # statically: t[] cannot carry a dependence.
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) {
                int t[2];
                t[0] = i; t[1] = t[0] + 1;
                A[i] = t[1];
              }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_DOALL

    def test_distinct_globals_never_alias(self):
        dep = only(verdicts(
            """
            int A[64]; int B[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i] = B[63-i]; }
              return A[0];
            }
            """))
        # A and B are distinct storage; B's reversed read order is
        # irrelevant (reads never conflict with reads).
        assert dep.verdict == VERDICT_DOALL


class TestRegisterClassifier:
    def test_table1_register_split(self):
        module = compile_source(
            """
            int A[64];
            int main() {
              int total = 0;
              int chaos = 1;
              for (int i = 0; i < 64; i = i + 1) {
                total = total + A[i];
                chaos = A[chaos];
              }
              return total + chaos;
            }
            """)
        f = module.get_function("main")
        info = LoopInfo(f)
        scev = ScalarEvolution(f, info)
        loop = info.all_loops()[0]
        classes = {phi.name.split(".")[0]: (reg_class, kind)
                   for _, phi, reg_class, kind
                   in classify_header_phis(loop, scev)}
        assert classes["i"] == (REG_COMPUTABLE, None)
        assert classes["total"][0] == REG_REDUCTION
        assert classes["total"][1] is not None
        assert classes["chaos"] == (REG_NONCOMPUTABLE, None)


class TestStrideMultiples:
    def test_positive_stride(self):
        assert _stride_multiples_in(3, 10, 2) == (2, 5)
        assert _stride_multiples_in(-7, -3, 2) == (-3, -2)
        assert _stride_multiples_in(1, 1, 2) == (1, 0)  # empty

    def test_negative_stride(self):
        # -3k in [2, 10]  =>  k in [-3, -1]
        assert _stride_multiples_in(2, 10, -3) == (-3, -1)
        # -1k in [-1, -1]  =>  k == 1
        assert _stride_multiples_in(-1, -1, -1) == (1, 1)

    def test_zero_stride(self):
        assert _stride_multiples_in(-1, 1, 0) is None  # unbounded
        assert _stride_multiples_in(2, 5, 0) == (1, 0)  # empty


class TestSerialization:
    def test_to_dict_round_trips_the_fields(self):
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 1; i < 64; i = i + 1) { A[i] = A[i-1]; }
              return A[0];
            }
            """))
        payload = dep.to_dict()
        assert payload["verdict"] == VERDICT_LCD
        assert payload["distance"] == 1
        assert payload["loop_id"] == dep.loop_id
        assert payload["tested_pairs"] == dep.tested_pairs

    def test_static_info_exposes_dependence_lazily(self):
        from repro.core.framework import Loopapalooza

        lp = Loopapalooza(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i] = i; }
              return A[0];
            }
            """, name="lazy-dep")
        deps = lp.static_info.dependence()
        assert set(deps) == set(lp.static_info.loops)
        # Cached: same object on the second call.
        assert lp.static_info.dependence() is deps


class TestDirectionVectors:
    """Pinned direction-vector renderings, one per lattice direction.

    The analyzed level is always the first vector position; inner-loop
    dimensions follow in nest order (`=` when provably equal, `*` when any
    direction is possible), and a trailing `*` marks residual callee
    spans."""

    def test_flow_dependence_renders_lt(self):
        dep = only(verdicts(
            """
            int A[64];
            int main() {
              for (int i = 1; i < 64; i = i + 1) { A[i] = A[i-1] + 1; }
              return A[63];
            }
            """))
        assert dep.verdict == VERDICT_LCD
        assert dep.distances == (1,)
        assert dep.vectors == (
            "store in for.body2 of @A -> load in for.body2 of @A: (<)",)

    def test_anti_dependence_renders_gt(self):
        dep = only(verdicts(
            """
            int A[65];
            int main() {
              for (int i = 0; i < 64; i = i + 1) { A[i] = A[i+1] + 1; }
              return A[0];
            }
            """))
        assert dep.verdict == VERDICT_LCD
        assert dep.distances == (1,)
        assert dep.vectors == (
            "store in for.body2 of @A -> load in for.body2 of @A: (>)",)

    def test_inner_carried_dependence_is_eq_at_the_outer_level(self):
        # A[i*64+j] = A[i*64+j-1]: the dependence is carried entirely by
        # the inner loop. At the outer level the direction is `=` — i.e.
        # no cross-iteration pair survives, so the outer loop is DOALL
        # with an empty vector set while the inner loop pins (<).
        deps = verdicts(
            """
            int A[4096];
            int main() {
              for (int i = 0; i < 64; i = i + 1)
                for (int j = 1; j < 64; j = j + 1)
                  A[i*64+j] = A[i*64+j-1] + 1;
              return A[0];
            }
            """)
        by_id = sorted(deps.items())  # for.cond1 (outer) < for.cond5
        outer, inner = by_id[0][1], by_id[1][1]
        assert outer.verdict == VERDICT_DOALL
        assert outer.vectors == ()
        assert inner.verdict == VERDICT_LCD
        assert inner.vectors == (
            "store in for.body6 of @A -> load in for.body6 of @A: (<)",)

    def test_outer_carried_dependence_marks_the_inner_level_star(self):
        # A[i*64+j] = A[(i-1)*64+j]: carried by the outer loop at exact
        # distance 1; the inner level is reported `*` (the engine proves
        # the distance through the inner window without pinning the inner
        # direction). The inner loop itself is DOALL — within one outer
        # iteration rows i and i-1 never collide.
        deps = verdicts(
            """
            int A[4096];
            int main() {
              for (int i = 1; i < 64; i = i + 1)
                for (int j = 0; j < 64; j = j + 1)
                  A[i*64+j] = A[(i-1)*64+j] + 1;
              return A[0];
            }
            """)
        by_id = sorted(deps.items())
        outer, inner = by_id[0][1], by_id[1][1]
        assert outer.verdict == VERDICT_LCD
        assert outer.distances == (1,)
        assert outer.vectors == (
            "store in for.body6 of @A -> load in for.body6 of @A: (<, *)",)
        assert inner.verdict == VERDICT_DOALL

    def test_mixed_directions_on_one_pair(self):
        # A[i*4+j], j in [0,7]: rows collide both forward and backward
        # (4k in [-7,7] for k = ±1), one pair carrying both < and >.
        deps = verdicts(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 8; i = i + 1)
                for (int j = 0; j < 8; j = j + 1)
                  A[i*4+j] = i + j;
              return A[0];
            }
            """)
        outer = sorted(deps.items())[0][1]
        assert outer.verdict == VERDICT_LCD
        assert outer.distances == (1,)
        assert len(outer.vectors) == 1
        assert outer.vectors[0].endswith(": (<>, *)")


class TestSummaryTranslation:
    """Call-summary translation cases: each pins one rule of the
    callee-frame -> caller-frame access-function rewrite."""

    def test_scalar_coefficient_scales_through_the_call(self):
        # poke2(i) writes A[2*i]: the formal's coefficient (2) multiplies
        # the actual's stride, so iterations stay disjoint.
        deps = verdicts(
            """
            int A[128];
            void poke2(int k) { A[2*k] = 1; }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { poke2(i); }
              return A[0];
            }
            """)
        main = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main[0].verdict == VERDICT_DOALL

    def test_pointer_formal_binds_the_actual_base(self):
        deps = verdicts(
            """
            int A[64];
            void wr(int* p, int i) { p[i] = 1; }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { wr(A, i); }
              return A[0];
            }
            """)
        main = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main[0].verdict == VERDICT_DOALL

    def test_callee_loop_span_keeps_disjoint_rows_doall(self):
        # fill_row(i) writes A[i*8 .. i*8+7]: the callee loop folds into
        # a [0,7] span window; rows are disjoint, so the caller is DOALL.
        deps = verdicts(
            """
            int A[512];
            void fill_row(int r) {
              for (int j = 0; j < 8; j = j + 1) { A[r*8+j] = j; }
            }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { fill_row(i); }
              return A[0];
            }
            """)
        main = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main[0].verdict == VERDICT_DOALL

    def test_callee_loop_span_overlap_is_an_exact_lcd(self):
        # Same shape with stride 4: consecutive rows share 4 cells, an
        # exact outer distance of 1 proved through the callee summary.
        deps = verdicts(
            """
            int A[512];
            void fill_row(int r) {
              for (int j = 0; j < 8; j = j + 1) { A[r*4+j] = j; }
            }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { fill_row(i); }
              return A[0];
            }
            """)
        main = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main[0].verdict == VERDICT_LCD
        assert main[0].distances == (1,)

    def test_nested_call_composition(self):
        # outer_fn -> inner -> A[k]: the access function survives two
        # translation hops and still proves the loop.
        deps = verdicts(
            """
            int A[64];
            void inner(int k) { A[k] = 7; }
            void outer_fn(int k) { inner(k); }
            int main() {
              for (int i = 0; i < 64; i = i + 1) { outer_fn(i); }
              return A[0];
            }
            """)
        main = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main[0].verdict == VERDICT_DOALL

    def test_recursive_pure_scalar_callee_has_an_empty_summary(self):
        # The SCC fixpoint converges to a no-memory summary for fib, so
        # the calling loop is unaffected by the recursion.
        module = compile_source(
            """
            int A[64];
            int fib(int n) {
              if (n < 2) { return n; }
              return fib(n-1) + fib(n-2);
            }
            int main() {
              for (int i = 0; i < 16; i = i + 1) { A[i] = fib(i); }
              return A[0];
            }
            """)
        summaries = module_memory_summaries(module)
        fib = summaries[module.get_function("fib")]
        assert not fib.touches_memory and not fib.is_opaque
        deps = analyze_module(module)
        main = [d for lid, d in deps.items() if lid.startswith("main.")]
        assert main[0].verdict == VERDICT_DOALL


class TestDeterminism:
    SOURCE = """
        int A[64]; int B[64];
        int f(int i) { return B[i] + A[i]; }
        int main() {
          for (int i = 0; i < 64; i = i + 1) { A[i] = f(i) + A[i+1]; }
          return A[0];
        }
    """

    def test_reasons_are_sorted_and_stable(self):
        first = {lid: d.to_dict()
                 for lid, d in verdicts(self.SOURCE).items()}
        second = {lid: d.to_dict()
                  for lid, d in verdicts(self.SOURCE).items()}
        assert first == second
        for payload in first.values():
            assert payload["reasons"] == sorted(payload["reasons"])
