"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.interpreter import _wrap32
from repro.predictors import (
    FCMPredictor,
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
    perfect_hybrid_flags,
    simulate,
)
from repro.reporting import geomean
from repro.runtime.cost_models import (
    doall_cost,
    helix_cost,
    pdoall_cost,
    pdoall_phase_breaks,
)

iter_costs = st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                      max_size=60)
value_streams = st.lists(
    st.one_of(st.integers(min_value=-10**6, max_value=10**6),
              st.floats(allow_nan=False, allow_infinity=False,
                        min_value=-1e6, max_value=1e6)),
    max_size=60,
)


class TestCostModelProperties:
    @given(iter_costs)
    def test_doall_parallel_cost_is_max(self, costs):
        outcome = doall_cost(costs, False)
        assert outcome.cost == max(costs)
        assert outcome.cost <= sum(costs)

    @given(iter_costs, st.sets(st.integers(min_value=1, max_value=59)))
    def test_pdoall_cost_between_max_and_serial(self, costs, conflict_iters):
        pairs = {c: c - 1 for c in conflict_iters if c < len(costs)}
        breaks = pdoall_phase_breaks(pairs, len(costs))
        outcome = pdoall_cost(costs, breaks)
        assert max(costs) <= outcome.cost <= sum(costs)

    @given(iter_costs, st.floats(min_value=0, max_value=1e5))
    def test_helix_cost_bounds(self, costs, delta):
        outcome = helix_cost(costs, delta)
        assert outcome.cost >= max(costs)
        assert outcome.cost <= sum(costs)
        if not outcome.parallel:
            assert outcome.cost == sum(costs)

    @given(iter_costs)
    def test_helix_monotone_in_delta(self, costs):
        previous = -1.0
        for delta in (0.0, 0.5, 1.0, 2.0, 5.0):
            cost = helix_cost(costs, delta).cost
            assert cost >= previous - 1e-9
            previous = cost

    @given(st.dictionaries(st.integers(min_value=1, max_value=200),
                           st.integers(min_value=0, max_value=199),
                           max_size=50))
    def test_phase_breaks_sorted_and_valid(self, raw_pairs):
        pairs = {c: w for c, w in raw_pairs.items() if w < c}
        breaks = pdoall_phase_breaks(pairs, 201)
        assert breaks == sorted(breaks)
        assert all(0 < b < 201 for b in breaks)
        assert len(breaks) <= len(pairs)

    @given(iter_costs, st.sets(st.integers(min_value=1, max_value=59)))
    def test_more_breaks_never_cheaper(self, costs, conflicts):
        valid = sorted(c for c in conflicts if 0 < c < len(costs))
        full = pdoall_cost(costs, valid)
        fewer = pdoall_cost(costs, valid[: len(valid) // 2])
        assert fewer.cost <= full.cost + 1e-9


class TestPredictorProperties:
    @given(value_streams)
    def test_simulate_length_matches(self, values):
        for predictor in (LastValuePredictor(), StridePredictor(),
                          TwoDeltaStridePredictor(), FCMPredictor()):
            flags = simulate(predictor, values)
            assert len(flags) == len(values)

    @given(value_streams)
    def test_hybrid_dominates_components(self, values):
        hybrid = perfect_hybrid_flags(values)
        for predictor in (LastValuePredictor(), StridePredictor(),
                          TwoDeltaStridePredictor(), FCMPredictor()):
            component = simulate(predictor, values)
            assert all(h or not c for h, c in zip(hybrid, component))

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=30))
    def test_constant_extension_eventually_predicted(self, prefix):
        values = prefix + [prefix[-1]] * 5
        flags = perfect_hybrid_flags(values)
        assert flags[-1], "last-value must catch a repeated tail"

    @given(st.integers(min_value=-100, max_value=100),
           st.integers(min_value=-50, max_value=50),
           st.integers(min_value=4, max_value=40))
    def test_stride_perfect_on_arithmetic(self, start, step, length):
        values = [start + step * i for i in range(length)]
        flags = simulate(StridePredictor(), values)
        assert all(flags[2:])


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1,
                    max_size=50))
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)

    @given(st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1,
                    max_size=20),
           st.floats(min_value=0.1, max_value=10))
    def test_geomean_scales_linearly(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert math.isclose(scaled, geomean(values) * factor, rel_tol=1e-6)

    def test_geomean_rejects_nonpositive(self):
        import pytest

        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestWrap32Properties:
    @given(st.integers(min_value=-2**40, max_value=2**40))
    def test_range(self, value):
        wrapped = _wrap32(value)
        assert -(2**31) <= wrapped < 2**31

    @given(st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_identity_in_range(self, value):
        assert _wrap32(value) == value

    @given(st.integers(min_value=-2**40, max_value=2**40),
           st.integers(min_value=-2**40, max_value=2**40))
    def test_additive_homomorphism(self, a, b):
        assert _wrap32(_wrap32(a) + _wrap32(b)) == _wrap32(a + b)


class TestSCEVProperty:
    @settings(max_examples=25)
    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=1, max_value=9),
           st.integers(min_value=3, max_value=25))
    def test_affine_iv_matches_execution(self, start, step, trips):
        from repro.analysis import LoopInfo, ScalarEvolution
        from repro.frontend import compile_source
        from repro.interp.interpreter import run_module

        bound = start + step * trips
        source = f"""
        int OUT[64];
        int main() {{
          int i;
          int n = 0;
          for (i = {start}; i < {bound}; i = i + {step}) {{
            OUT[n & 63] = i;
            n = n + 1;
          }}
          return n;
        }}
        """
        module = compile_source(source)
        f = module.get_function("main")
        info = LoopInfo(f)
        scev = ScalarEvolution(f, info)
        loop = info.all_loops()[0]
        phi = {p.name: p for p in loop.header.phis()}["i"]
        expr = scev.get(phi)
        result, machine = run_module(module)
        assert result == trips
        for n in range(trips):
            assert expr.evaluate_at(n) == start + step * n
        assert scev.trip_count(loop) == trips


class TestFissionFusionRoundTrip:
    """Structural-transform round trip: distributing a loop and re-merging
    the pieces must never change what the program computes, across a
    family of two-statement loops with a parallel slice and a serial
    recurrence of random distance."""

    @settings(max_examples=20)
    @given(st.integers(min_value=-9, max_value=9),
           st.integers(min_value=-9, max_value=9),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=8, max_value=60))
    def test_round_trip_preserves_result(self, c1, c2, distance, bound):
        from repro.frontend import compile_source
        from repro.interp.interpreter import run_module
        from repro.passes import (
            run_loop_fission_module,
            run_loop_fusion_module,
        )

        source = f"""
        int A[64]; int B[64]; int S[64];
        int main() {{
          for (int i = {distance}; i < {bound}; i = i + 1) {{
            A[i] = B[i] + {c1};
            S[i] = S[i - {distance}] + {c2};
          }}
          return A[{bound - 1}] + S[{bound - 1}] + A[0];
        }}
        """
        baseline, _ = run_module(compile_source(source))

        module = compile_source(source)
        fissioned = run_loop_fission_module(module)
        after_fission, _ = run_module(module)
        assert after_fission == baseline

        # Fission products are deliberately not fusion candidates (that
        # would undo the distribution); the override forces the re-merge.
        fused = run_loop_fusion_module(module, ignore_origins=True)
        after_fusion, _ = run_module(module)
        assert after_fusion == baseline
        if fissioned:
            assert fused, "fission split the loop but fusion could not " \
                "re-merge lockstep clones"
