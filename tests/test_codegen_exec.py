"""Behavioural tests: compile MiniC and execute, checking C semantics."""

import pytest

from repro.errors import FuelExhausted, TrapError

from helpers import run_minic


class TestArithmetic:
    def test_integer_ops(self):
        result, _, _ = run_minic(
            "int main() { return (17 + 5) * 3 - 100 / 7 + 100 % 7; }"
        )
        assert result == (17 + 5) * 3 - 100 // 7 + 100 % 7

    def test_c_division_truncates_toward_zero(self):
        result, _, _ = run_minic(
            """
            int a = -7;
            int b = 2;
            int main() { return a / b * 100 + iabs(a % b); }
            """
        )
        assert result == -3 * 100 + 1

    def test_bitwise(self):
        result, _, _ = run_minic(
            "int main() { return ((0xF0F & 255) | 256) ^ 3; }".replace("0xF0F", "3855")
        )
        assert result == ((3855 & 255) | 256) ^ 3

    def test_shifts(self):
        result, _, _ = run_minic("int main() { return (1 << 10) + (1024 >> 3); }")
        assert result == 1024 + 128

    def test_int32_wraparound(self):
        result, _, _ = run_minic(
            "int main() { int x = 2147483647; return x + 1; }"
        )
        assert result == -(2**31)

    def test_float_arithmetic(self):
        result, _, _ = run_minic(
            "int main() { float x = 1.5 * 4.0 - 1.0; return (int)(x * 10.0); }"
        )
        assert result == 50

    def test_mixed_promotion(self):
        result, _, _ = run_minic(
            "int main() { float x = 3; return (int)((x + 1) / 2); }"
        )
        assert result == 2

    def test_unary_minus_and_not(self):
        result, _, _ = run_minic(
            "int main() { return -5 + !0 * 10 + !7; }"
        )
        assert result == -5 + 10 + 0

    def test_comparison_yields_int(self):
        result, _, _ = run_minic("int main() { return (3 < 5) + (5 < 3); }")
        assert result == 1


class TestControlFlow:
    def test_if_else_chain(self):
        source = """
        int grade(int x) {
          if (x >= 90) { return 4; }
          else if (x >= 80) { return 3; }
          else if (x >= 70) { return 2; }
          else { return 0; }
        }
        int main() { return grade(95)*1000 + grade(85)*100 + grade(75)*10 + grade(5); }
        """
        result, _, _ = run_minic(source)
        assert result == 4320

    def test_while_and_break(self):
        result, _, _ = run_minic(
            """
            int main() {
              int i = 0; int s = 0;
              while (1) {
                if (i >= 10) { break; }
                s = s + i;
                i = i + 1;
              }
              return s;
            }
            """
        )
        assert result == 45

    def test_continue(self):
        result, _, _ = run_minic(
            """
            int main() {
              int i; int s = 0;
              for (i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                s = s + i;
              }
              return s;
            }
            """
        )
        assert result == 25

    def test_nested_break_only_inner(self):
        result, _, _ = run_minic(
            """
            int main() {
              int i; int j; int s = 0;
              for (i = 0; i < 3; i = i + 1) {
                for (j = 0; j < 100; j = j + 1) {
                  if (j == 2) { break; }
                  s = s + 1;
                }
              }
              return s;
            }
            """
        )
        assert result == 6

    def test_short_circuit_and_skips_rhs(self):
        result, _, output = run_minic(
            """
            int side(int v) { print_int(v); return v; }
            int main() {
              if (0 && side(1)) { return 1; }
              if (1 && side(2)) { return side(3); }
              return 0;
            }
            """
        )
        assert output == [2, 3]
        assert result == 3

    def test_short_circuit_or_skips_rhs(self):
        result, _, output = run_minic(
            """
            int side(int v) { print_int(v); return v; }
            int main() {
              if (1 || side(1)) { side(9); }
              if (0 || side(2)) { return 5; }
              return 0;
            }
            """
        )
        assert output == [9, 2]
        assert result == 5

    def test_early_return_mid_loop(self):
        result, _, _ = run_minic(
            """
            int main() {
              int i;
              for (i = 0; i < 100; i = i + 1) {
                if (i == 7) { return i * 3; }
              }
              return -1;
            }
            """
        )
        assert result == 21


class TestFunctionsAndMemory:
    def test_recursion(self):
        result, _, _ = run_minic(
            """
            int ack(int m, int n) {
              if (m == 0) { return n + 1; }
              if (n == 0) { return ack(m - 1, 1); }
              return ack(m - 1, ack(m, n - 1));
            }
            int main() { return ack(2, 3); }
            """
        )
        assert result == 9

    def test_mutual_recursion(self):
        result, _, _ = run_minic(
            """
            int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
            int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
            int main() { return is_even(10) * 10 + is_odd(7); }
            """
        )
        assert result == 11

    def test_global_arrays(self):
        result, _, _ = run_minic(
            """
            int A[5] = {10, 20, 30};
            int main() { A[3] = A[0] + A[1]; return A[3] + A[4]; }
            """
        )
        assert result == 30

    def test_local_arrays(self):
        result, _, _ = run_minic(
            """
            int main() {
              int buf[4];
              int i;
              for (i = 0; i < 4; i = i + 1) { buf[i] = i * i; }
              return buf[0] + buf[1] + buf[2] + buf[3];
            }
            """
        )
        assert result == 14

    def test_pointer_params_write_caller_memory(self):
        result, _, _ = run_minic(
            """
            int A[4];
            void fill(int* p, int n, int v) {
              int i;
              for (i = 0; i < n; i = i + 1) { p[i] = v + i; }
            }
            int main() { fill(A, 4, 100); return A[0] + A[3]; }
            """
        )
        assert result == 100 + 103

    def test_address_of_scalar(self):
        result, _, _ = run_minic(
            """
            void bump(int* p) { p[0] = p[0] + 5; }
            int main() { int x = 10; bump(&x); return x; }
            """
        )
        assert result == 15

    def test_address_of_array_element(self):
        result, _, _ = run_minic(
            """
            int A[8];
            void setit(int* p) { p[0] = 7; }
            int main() { setit(&A[3]); return A[3]; }
            """
        )
        assert result == 7

    def test_void_function(self):
        result, _, output = run_minic(
            """
            int G = 0;
            void twice(int v) { G = v * 2; }
            int main() { twice(21); return G; }
            """
        )
        assert result == 42

    def test_loop_local_array_fresh_each_iteration(self):
        # Allocas in the loop body give privatized storage per iteration.
        result, _, _ = run_minic(
            """
            int main() {
              int i;
              int s = 0;
              for (i = 0; i < 3; i = i + 1) {
                int tmp[2];
                tmp[0] = tmp[0] + 1;   // always 0 -> 1: fresh zeroed slot
                s = s + tmp[0];
              }
              return s;
            }
            """
        )
        assert result == 3


class TestTraps:
    def test_division_by_zero_traps(self):
        with pytest.raises(TrapError):
            run_minic("int z = 0; int main() { return 5 / z; }")

    def test_out_of_bounds_traps(self):
        with pytest.raises(TrapError):
            run_minic(
                """
                int A[4];
                int main() { return A[100000]; }
                """
            )

    def test_fuel_exhaustion(self):
        with pytest.raises(FuelExhausted):
            run_minic(
                "int main() { int i = 0; while (1) { i = i + 1; } return i; }",
                fuel=10_000,
            )

    def test_runaway_recursion_trapped(self):
        with pytest.raises(TrapError, match="depth"):
            run_minic("int f(int n) { return f(n + 1); } int main() { return f(0); }")


class TestDeterminism:
    def test_repeated_runs_identical(self):
        source = """
        int main() {
          int i; int s = 0;
          srand(42);
          for (i = 0; i < 10; i = i + 1) { s = s ^ rand(); }
          print_int(s);
          return s & 32767;
        }
        """
        first = run_minic(source)
        second = run_minic(source)
        assert first == second
