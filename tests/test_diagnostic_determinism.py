"""Diagnostics must be byte-identical across interpreter hash seeds.

Checker messages are built from stable names only — never from ``id()``
values, hashes, or set iteration order. These tests run the real CLI in
subprocesses with different ``PYTHONHASHSEED`` values and require the
outputs to match byte for byte.
"""

import os
import subprocess
import sys

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

# A program with material for every layer: an UNKNOWN verdict (LP204),
# a proven LCD with real dynamic conflicts, and a clean DOALL loop.
DEMO = """
int A[128]; int B[64];
int main() {
  int i;
  A[0] = 3;
  for (i = 1; i < 64; i = i + 1) { A[i] = A[i-1] + i; }
  for (i = 0; i < 63; i = i + 1) { A[2*i] = A[i] + 1; }
  for (i = 0; i < 64; i = i + 1) { B[i] = A[i] * 2; }
  return B[63];
}
"""


def run_cli(arguments, seed, extra_env=None):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    env["PYTHONPATH"] = REPO_SRC
    # Keep the profile store out of the picture: both runs must agree on
    # freshly computed results, not on a shared cache entry.
    env["REPRO_NO_PROFILE_CACHE"] = "1"
    if extra_env:
        env.update(extra_env)
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        capture_output=True, text=True, env=env, timeout=300)
    return completed.returncode, completed.stdout


@pytest.fixture(scope="module")
def demo_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("determinism") / "demo.c"
    path.write_text(DEMO)
    return str(path)


class TestHashSeedIndependence:
    def test_lint_output_identical_across_seeds(self, demo_file):
        code0, out0 = run_cli(["lint", demo_file], seed=0)
        code1, out1 = run_cli(["lint", demo_file], seed=1)
        assert code0 == code1 == 0
        assert "LP204" in out0
        assert out0 == out1

    def test_crosscheck_output_identical_across_seeds(self, demo_file):
        code0, out0 = run_cli(["crosscheck", "--loops", demo_file], seed=0)
        code1, out1 = run_cli(["crosscheck", "--loops", demo_file], seed=1)
        assert code0 == code1 == 0
        assert "confirmed-lcd" in out0
        assert out0 == out1

    def test_lint_bench_identical_across_seeds(self):
        arguments = ["lint", "--bench", "eembc/viterbi_like"]
        code0, out0 = run_cli(arguments, seed=7)
        code1, out1 = run_cli(arguments, seed=4242)
        assert code0 == code1 == 0
        assert out0 == out1
