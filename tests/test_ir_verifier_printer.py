"""Verifier and printer/parser tests."""

import pytest

from repro.errors import VerificationError
from repro.frontend import compile_source
from repro.interp.interpreter import run_module
from repro.ir import (
    I32,
    IRBuilder,
    Module,
    Phi,
    parse_module,
    print_function,
    print_module,
    verify_module,
)
from repro.ir.values import ConstantInt

from helpers import build_counting_loop


class TestVerifier:
    def test_accepts_well_formed_loop(self):
        module, _ = build_counting_loop()
        assert verify_module(module)

    def test_missing_terminator(self):
        module = Module("t")
        f = module.add_function("f", I32, [])
        f.append_block("entry")  # no terminator
        with pytest.raises(VerificationError, match="missing terminator"):
            verify_module(module)

    def test_phi_incoming_mismatch(self):
        module = Module("t")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        merge = f.append_block("merge")
        IRBuilder(entry).br(merge)
        phi = Phi(I32, "p")
        merge.insert_phi(phi)  # no incoming for predecessor `entry`
        IRBuilder(merge).ret(phi)
        with pytest.raises(VerificationError, match="phi incoming"):
            verify_module(module)

    def test_use_not_dominated(self):
        module = Module("t")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        left = f.append_block("left")
        right = f.append_block("right")
        merge = f.append_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("eq", b.const_int(0), b.const_int(0))
        b.condbr(cond, left, right)
        b.position_at_end(left)
        defined_in_left = b.add(b.const_int(1), b.const_int(2), "x")
        b.br(merge)
        IRBuilder(right).br(merge)
        b.position_at_end(merge)
        b.ret(defined_in_left)  # not dominated: right path skips the def
        with pytest.raises(VerificationError, match="not dominated"):
            verify_module(module)

    def test_phi_use_checked_at_incoming_edge(self):
        # A phi may use a value that only dominates its incoming block.
        module = Module("t")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        left = f.append_block("left")
        right = f.append_block("right")
        merge = f.append_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("eq", b.const_int(0), b.const_int(1))
        b.condbr(cond, left, right)
        b.position_at_end(left)
        x = b.add(b.const_int(1), b.const_int(2), "x")
        b.br(merge)
        IRBuilder(right).br(merge)
        phi = Phi(I32, "p")
        merge.insert_phi(phi)
        phi.add_incoming(x, left)
        phi.add_incoming(ConstantInt(I32, 0), right)
        IRBuilder(merge).ret(phi)
        assert verify_module(module)

    def test_branch_to_foreign_block(self):
        module = Module("t")
        f = module.add_function("f", I32, [])
        g = module.add_function("g", I32, [])
        target = g.append_block("g_entry")
        IRBuilder(target).ret(ConstantInt(I32, 0))
        entry = f.append_block("entry")
        IRBuilder(entry).br(target)
        with pytest.raises(VerificationError, match="foreign block"):
            verify_module(module)

    def test_compiled_programs_verify(self):
        module = compile_source(
            """
            int main() {
              int i; int s = 0;
              for (i = 0; i < 10; i = i + 1) { if (i & 1) { s = s + i; } }
              return s;
            }
            """
        )
        assert verify_module(module)


SAMPLE = """
int N = 24;
float X[24];
int helper(int a, int b) { return a * b + 3; }
int main() {
  int i;
  float acc = 0.0;
  for (i = 0; i < N; i = i + 1) {
    X[i] = noise_f64(i) - 0.5;
    if (X[i] > 0.0) { acc = acc + X[i]; }
  }
  return helper((int)(acc * 8.0), N);
}
"""


class TestPrinterParser:
    def test_round_trip_text_identical(self):
        module = compile_source(SAMPLE)
        text = print_module(module)
        reparsed = parse_module(text, name=module.name)
        assert print_module(reparsed) == text

    def test_round_trip_behaviour_identical(self):
        module = compile_source(SAMPLE)
        reparsed = parse_module(print_module(module), name=module.name)
        verify_module(reparsed)
        r1, m1 = run_module(module)
        r2, m2 = run_module(reparsed)
        assert r1 == r2
        assert m1.cost == m2.cost

    def test_print_function_contains_blocks_and_phis(self):
        module, function = build_counting_loop()
        text = print_function(function)
        assert "phi i32" in text
        assert "condbr i1" in text
        assert text.startswith("func @f(")

    def test_printer_names_anonymous_values(self):
        module, function = build_counting_loop()
        text = print_function(function)
        # anonymous compare got a %tN name
        assert "%cond" in text

    def test_parse_rejects_garbage(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_module("func @f() -> i32 { entry: frobnicate }")

    def test_parse_rejects_undefined_value(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_module(
                "func @f() -> i32 {\nentry:\n  ret i32 %nope\n}"
            )

    def test_globals_round_trip(self):
        module = Module("g")
        module.add_global(I32, "scalar", 7)
        from repro.ir import ArrayType, F64

        module.add_global(ArrayType(F64, 3), "arr", [1.5, 2.5])
        text = print_module(module)
        reparsed = parse_module(text, name="g")
        assert reparsed.get_global("scalar").initializer == 7
        assert reparsed.get_global("arr").flat_initializer() == [1.5, 2.5, 0.0]


class TestPhiEdgeMultisets:
    """The phi/CFG match is a *multiset* comparison: duplicate CFG edges
    need duplicate incoming entries, and vice versa."""

    def _diamond_to_same_target(self):
        # entry --condbr--> merge on BOTH edges: merge has two
        # predecessor edges from the same block.
        module = Module("t")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        merge = f.append_block("merge")
        b = IRBuilder(entry)
        cond = b.icmp("eq", b.const_int(0), b.const_int(0))
        b.condbr(cond, merge, merge)
        return module, f, entry, merge

    def test_condbr_same_target_needs_two_incomings(self):
        module, f, entry, merge = self._diamond_to_same_target()
        phi = Phi(I32, "p")
        merge.insert_phi(phi)
        phi.add_incoming(ConstantInt(I32, 1), entry)  # only one entry
        IRBuilder(merge).ret(phi)
        with pytest.raises(VerificationError, match="phi incoming"):
            verify_module(module)

    def test_condbr_same_target_with_both_incomings_verifies(self):
        module, f, entry, merge = self._diamond_to_same_target()
        phi = Phi(I32, "p")
        merge.insert_phi(phi)
        phi.add_incoming(ConstantInt(I32, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), entry)
        IRBuilder(merge).ret(phi)
        assert verify_module(module)

    def test_duplicated_incoming_on_single_edge_rejected(self):
        # One real edge entry->merge, but the phi lists entry twice: the
        # old set-based comparison used to accept this silently.
        module = Module("t")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        merge = f.append_block("merge")
        IRBuilder(entry).br(merge)
        phi = Phi(I32, "p")
        merge.insert_phi(phi)
        phi.add_incoming(ConstantInt(I32, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), entry)
        IRBuilder(merge).ret(phi)
        with pytest.raises(VerificationError, match="phi incoming"):
            verify_module(module)

    def test_incoming_block_from_other_function_rejected(self):
        module = Module("t")
        f = module.add_function("f", I32, [])
        g = module.add_function("g", I32, [])
        foreign = g.append_block("g_entry")
        IRBuilder(foreign).ret(ConstantInt(I32, 0))
        entry = f.append_block("entry")
        merge = f.append_block("merge")
        IRBuilder(entry).br(merge)
        phi = Phi(I32, "p")
        merge.insert_phi(phi)
        phi.add_incoming(ConstantInt(I32, 1), entry)
        phi.add_incoming(ConstantInt(I32, 2), foreign)
        IRBuilder(merge).ret(phi)
        with pytest.raises(VerificationError,
                           match="not in this function"):
            verify_module(module)

    def test_phi_in_predecessorless_block_rejected(self):
        module = Module("t")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        IRBuilder(entry).ret(ConstantInt(I32, 0))
        orphan = f.append_block("orphan")
        phi = Phi(I32, "p")
        orphan.insert_phi(phi)
        IRBuilder(orphan).ret(phi)
        with pytest.raises(VerificationError, match="no predecessors"):
            verify_module(module)
