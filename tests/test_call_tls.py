"""Function-call/continuation TLS estimator tests (paper §I extension)."""

import pytest

from repro.core import Loopapalooza, estimate_call_tls, format_call_tls


def report_for(source, name="calltls"):
    lp = Loopapalooza(source, name)
    return lp, lp.call_tls_report()


class TestDependenceDetection:
    def test_immediate_result_use_blocks_overlap(self):
        lp, report = report_for(
            """
            int heavy(int seed) {
              int k; int acc = seed;
              for (k = 0; k < 50; k = k + 1) { acc = (acc * 31 + k) & 32767; }
              return acc;
            }
            int main() {
              int i; int sum = 0;
              for (i = 0; i < 20; i = i + 1) {
                sum = sum + heavy(i);     // consumed immediately
              }
              return sum & 32767;
            }
            """
        )
        site = next(iter(report.sites.values()))
        assert site.calls == 20
        assert site.dependent_calls == 20
        assert site.hidden_fraction < 0.05
        assert report.speedup < 1.1

    def test_unused_result_with_independent_continuation_overlaps(self):
        lp, report = report_for(
            """
            int SCRATCH[64];
            int OUT[64];
            void produce(int i) {
              int k;
              for (k = 0; k < 30; k = k + 1) {
                SCRATCH[(i + k) & 63] = i * k;
              }
            }
            int main() {
              int i;
              int sum = 0;
              for (i = 0; i < 20; i = i + 1) {
                produce(i);
                // long continuation that never touches SCRATCH
                int k; int w = 0;
                for (k = 0; k < 40; k = k + 1) { w = w + ((i * k) & 15); }
                OUT[i & 63] = w;
                sum = sum + w;
              }
              return sum & 32767;
            }
            """
        )
        site = [s for s in report.sites.values() if "produce" in s.site_id][0]
        assert site.hidden_fraction > 0.8
        assert report.speedup > 1.2

    def test_memory_raw_into_continuation_detected(self):
        lp, report = report_for(
            """
            int BOX[8];
            void write_box(int v) { BOX[0] = v; }
            int main() {
              int i; int sum = 0;
              for (i = 0; i < 20; i = i + 1) {
                write_box(i * 3);
                sum = sum + BOX[0];      // immediate RAW on the callee write
                int k; int w = 0;
                for (k = 0; k < 30; k = k + 1) { w = w + k; }
                sum = sum + (w & 1);
              }
              return sum & 32767;
            }
            """
        )
        site = [s for s in report.sites.values() if "write_box" in s.site_id][0]
        assert site.dependent_calls == 20
        assert site.hidden_fraction < 0.6

    def test_late_memory_dependence_allows_partial_overlap(self):
        lp, report = report_for(
            """
            int BOX[8];
            void write_box(int v) {
              int k;
              for (k = 0; k < 20; k = k + 1) { BOX[k & 7] = v + k; }
            }
            int main() {
              int i; int sum = 0;
              for (i = 0; i < 20; i = i + 1) {
                write_box(i);
                int k; int w = 0;                      // independent work...
                for (k = 0; k < 60; k = k + 1) { w = w + ((i + k) & 7); }
                sum = sum + w + BOX[2];                // ...then the RAW
              }
              return sum & 32767;
            }
            """
        )
        site = [s for s in report.sites.values() if "write_box" in s.site_id][0]
        assert site.dependent_calls == 20
        assert site.hidden_fraction > 0.5  # the dep lands late

    def test_intrinsic_calls_not_tracked(self):
        lp, report = report_for(
            """
            int main() {
              int i; int s = 0;
              for (i = 0; i < 10; i = i + 1) { s = s + hash_i32(i); }
              return s & 32767;
            }
            """
        )
        assert report.sites == {}
        assert report.speedup == pytest.approx(1.0)


class TestReportShape:
    SOURCE = """
    int A[64];
    int pure_fn(int x) { return (x * 7) & 1023; }
    int main() {
      int i; int s = 0;
      for (i = 0; i < 15; i = i + 1) {
        int r = pure_fn(i);
        A[i & 63] = i;
        s = s + r;
      }
      return s;
    }
    """

    def test_site_ids_name_caller_and_callee(self):
        lp, report = report_for(self.SOURCE)
        assert all(
            site_id.startswith("main@pure_fn#") for site_id in report.sites
        )

    def test_ranked_sites_sorted_by_saving(self):
        lp, report = report_for(self.SOURCE)
        ranked = report.ranked_sites()
        savings = [s.total_saving for s in ranked]
        assert savings == sorted(savings, reverse=True)

    def test_format_renders(self):
        lp, report = report_for(self.SOURCE)
        text = format_call_tls(report)
        assert "estimated limit speedup" in text
        assert "main@pure_fn#0" in text

    def test_call_coverage_bounded(self, runner):
        from repro.bench import suite_programs

        for program in suite_programs("eembc")[:3]:
            report = estimate_call_tls(runner.instance(program).profile())
            assert 0.0 <= report.call_coverage <= 1.0
            assert report.speedup >= 1.0

    def test_serialization_preserves_call_sites(self):
        from repro.runtime.serialize import profile_from_dict, profile_to_dict

        lp, report = report_for(self.SOURCE)
        rebuilt = profile_from_dict(profile_to_dict(lp.profile()))
        rebuilt_report = estimate_call_tls(rebuilt)
        assert rebuilt_report.speedup == pytest.approx(report.speedup)
        assert set(rebuilt_report.sites) == set(report.sites)

    def test_recursive_calls_do_not_crash(self):
        lp, report = report_for(
            """
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(12); }
            """
        )
        assert report.speedup >= 1.0
        assert any("fib@fib#" in site for site in report.sites)
