"""Function-inliner tests (the optional, non-study pass)."""

import pytest
from hypothesis import given, settings

from repro.frontend import compile_source
from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse as parse_minic
from repro.frontend.sema import analyze
from repro.interp.interpreter import run_module
from repro.ir import verify_module
from repro.ir.instructions import Call
from repro.passes import run_inline_module, run_standard_pipeline

from test_differential import minic_program


def behaviour(module):
    result, machine = run_module(module, fuel=10_000_000)
    return result, tuple(machine.output)


def user_calls(module):
    return [
        instruction
        for function in module.defined_functions()
        for instruction in function.instructions()
        if isinstance(instruction, Call) and not instruction.callee.is_intrinsic
    ]


def compile_raw(source):
    module = CodeGenerator(analyze(parse_minic(source))).run()
    verify_module(module)
    return module


SOURCE = """
int A[32];
int clamp8(int v) {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v;
}
int scale(int v) { return clamp8(v * 3 - 100); }
int main() {
  int i; int s = 0;
  for (i = 0; i < 32; i = i + 1) { A[i] = scale(i * 17); s = s + A[i]; }
  print_int(s);
  return s & 32767;
}
"""


class TestMechanics:
    def test_inlines_and_preserves_behaviour(self):
        reference = behaviour(compile_raw(SOURCE))
        module = compile_raw(SOURCE)
        inlined = run_inline_module(module)
        verify_module(module)
        assert inlined >= 2  # scale and clamp8 chains collapse
        assert behaviour(module) == reference

    def test_multi_return_merged_with_phi(self):
        # clamp8 has three returns; the call result must come from a phi.
        module = compile_raw(SOURCE)
        run_inline_module(module)
        verify_module(module)
        run_standard_pipeline(module, verify_each=True)
        assert behaviour(module)[0] == behaviour(compile_raw(SOURCE))[0]

    def test_no_user_calls_left(self):
        module = compile_raw(SOURCE)
        run_inline_module(module, size_limit=1000)
        assert user_calls(module) == []

    def test_size_limit_respected(self):
        module = compile_raw(SOURCE)
        run_inline_module(module, size_limit=1)  # nothing fits
        assert user_calls(module)

    def test_recursion_not_inlined(self):
        module = compile_raw(
            """
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(10); }
            """
        )
        run_inline_module(module, size_limit=1000)
        verify_module(module)
        result, _ = run_module(module)
        assert result == 55
        assert user_calls(module), "recursive callees must stay calls"

    def test_mutual_recursion_not_inlined(self):
        module = compile_raw(
            """
            int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
            int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
            int main() { return even(8); }
            """
        )
        run_inline_module(module, size_limit=1000)
        result, _ = run_module(module)
        assert result == 1
        assert user_calls(module)

    def test_void_callee(self):
        module = compile_raw(
            """
            int G = 0;
            void bump(int v) { G = G + v; }
            int main() { bump(3); bump(4); return G; }
            """
        )
        inlined = run_inline_module(module)
        verify_module(module)
        assert inlined == 2
        result, _ = run_module(module)
        assert result == 7

    def test_inlined_call_inside_loop_header_region(self):
        module = compile_raw(
            """
            int limit(int n) { return n * 2 + 1; }
            int main() {
              int i; int s = 0;
              for (i = 0; i < limit(10); i = i + 1) { s = s + i; }
              return s;
            }
            """
        )
        run_inline_module(module)
        verify_module(module)
        result, _ = run_module(module)
        assert result == sum(range(21))


class TestStudyInteraction:
    def test_inlining_dissolves_fn_constraints(self):
        """The ablation's point: a call-blocked loop becomes fn0-parallel."""
        from repro.core import Loopapalooza

        plain = Loopapalooza(SOURCE, "no_inline")
        inlined = Loopapalooza(SOURCE, "inline", inline=True)
        config = "pdoall:reduc1-dep2-fn0"
        assert plain.evaluate(config).speedup < 1.3
        assert inlined.evaluate(config).speedup > 3

    def test_inline_flag_preserves_results(self):
        from repro.core import Loopapalooza

        plain = Loopapalooza(SOURCE, "a")
        inlined = Loopapalooza(SOURCE, "b", inline=True)
        assert plain.profile().result == inlined.profile().result
        assert plain.output == inlined.output


@settings(max_examples=25)
@given(minic_program())
def test_inline_differential_on_random_programs(source):
    reference = behaviour(compile_raw(source))
    module = compile_raw(source)
    run_inline_module(module)
    verify_module(module)
    run_standard_pipeline(module)
    assert behaviour(module) == reference


class TestLoopIdUniqueness:
    def test_double_inline_of_loopy_callee_keeps_loop_ids_unique(self):
        from repro.core import Loopapalooza

        lp = Loopapalooza(
            """
            int A[64];
            int rowsum(int base) {
              int k; int s = 0;
              for (k = 0; k < 8; k = k + 1) { s = s + A[base + k]; }
              return s;
            }
            int main() {
              int i;
              for (i = 0; i < 64; i = i + 1) { A[i] = i; }
              return (rowsum(0) + rowsum(8)) & 32767;
            }
            """,
            "double_inline",
            inline=True,
        )
        # Two inlined copies of rowsum's loop must be distinct static loops
        # inside main (the now-uncalled original definition also remains).
        inlined_loops = [l for l in lp.loop_ids() if l.startswith("main.rowsum")]
        assert len(inlined_loops) == 2
        result = lp.evaluate("pdoall:reduc1-dep2-fn0")
        assert result.speedup > 1.0
