"""Natural-loop detection and nesting forest tests."""

from repro.analysis import CFG, LoopInfo
from repro.frontend import compile_source
from repro.passes.loop_simplify import is_loop_simplified

from helpers import build_counting_loop


def loops_of(source, function="main"):
    module = compile_source(source)
    f = module.get_function(function)
    return LoopInfo(f)


class TestDetection:
    def test_single_loop(self):
        module, f = build_counting_loop()
        info = LoopInfo(f)
        assert len(info.all_loops()) == 1
        loop = info.all_loops()[0]
        assert loop.header.name == "header"
        assert loop.depth == 1
        assert loop.loop_id == "f.header"

    def test_no_loops(self):
        info = loops_of("int main() { return 3; }")
        assert info.all_loops() == []
        assert info.top_level == []

    def test_nested_loops(self):
        info = loops_of(
            """
            int A[100];
            int main() {
              int i; int j;
              for (i = 0; i < 10; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) { A[i*10+j] = i + j; }
              }
              return A[5];
            }
            """
        )
        loops = info.all_loops()
        assert len(loops) == 2
        outer = [l for l in loops if l.depth == 1][0]
        inner = [l for l in loops if l.depth == 2][0]
        assert inner.parent is outer
        assert inner in outer.subloops
        assert outer.contains_loop(inner)
        assert not inner.contains_loop(outer)
        assert inner.blocks < outer.blocks

    def test_sibling_loops(self):
        info = loops_of(
            """
            int A[10];
            int main() {
              int i;
              for (i = 0; i < 10; i = i + 1) { A[i] = i; }
              for (i = 0; i < 10; i = i + 1) { A[i] = A[i] * 2; }
              return A[3];
            }
            """
        )
        assert len(info.top_level) == 2
        assert all(loop.depth == 1 for loop in info.all_loops())

    def test_while_loop_detected(self):
        info = loops_of(
            """
            int main() {
              int x = 100;
              while (x > 1) { x = x / 2; }
              return x;
            }
            """
        )
        assert len(info.all_loops()) == 1

    def test_postorder_inner_first(self):
        info = loops_of(
            """
            int A[100];
            int main() {
              int i; int j;
              for (i = 0; i < 10; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) { A[i*10+j] = j; }
              }
              return 0;
            }
            """
        )
        postorder = info.loops_in_postorder()
        assert postorder[0].depth == 2
        assert postorder[1].depth == 1


class TestShape:
    def test_counting_loop_shape(self):
        module, f = build_counting_loop()
        info = LoopInfo(f)
        loop = info.all_loops()[0]
        cfg = info.cfg
        assert loop.preheader(cfg) is not None
        assert loop.single_latch() is not None
        assert loop.single_latch().name == "body"
        exits = loop.exit_blocks(cfg)
        assert len(exits) == 1 and exits[0].name == "exit"
        assert loop.exiting_blocks(cfg) == [loop.header]

    def test_compiled_loops_are_simplified(self):
        info = loops_of(
            """
            int A[50];
            int main() {
              int i;
              for (i = 0; i < 50; i = i + 1) {
                if (A[i] > 3) { break; }
                A[i] = i;
              }
              return 0;
            }
            """
        )
        for loop in info.all_loops():
            assert is_loop_simplified(loop, info.cfg)

    def test_break_creates_multiple_exit_edges(self):
        info = loops_of(
            """
            int A[50];
            int main() {
              int i;
              for (i = 0; i < 50; i = i + 1) {
                if (A[i] > 3) { break; }
                A[i] = i;
              }
              return 0;
            }
            """
        )
        loop = info.all_loops()[0]
        assert len(loop.exit_edges(info.cfg)) >= 2

    def test_invariance(self):
        module, f = build_counting_loop()
        info = LoopInfo(f)
        loop = info.all_loops()[0]
        header_phi = next(loop.header.phis())
        assert not loop.is_invariant(header_phi)
        # constants and out-of-loop defs are invariant
        from repro.ir.values import ConstantInt
        from repro.ir import I32

        assert loop.is_invariant(ConstantInt(I32, 3))

    def test_loop_for_block(self):
        info = loops_of(
            """
            int A[100];
            int main() {
              int i; int j;
              for (i = 0; i < 10; i = i + 1) {
                A[i] = 0;
                for (j = 0; j < 10; j = j + 1) { A[i] = A[i] + j; }
              }
              return 0;
            }
            """
        )
        inner = [l for l in info.all_loops() if l.depth == 2][0]
        outer = [l for l in info.all_loops() if l.depth == 1][0]
        assert info.loop_for_block(inner.header) is inner
        assert info.loop_for_block(outer.header) is outer
        entry = info.function.entry_block
        assert info.loop_for_block(entry) is None
        assert info.loop_depth(inner.header) == 2
        assert info.loop_depth(entry) == 0
