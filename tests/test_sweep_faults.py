"""Fault tolerance of the parallel sweep engine.

Pins the tentpole contract: a worker that dies mid-sweep (simulated with
the ``REPRO_SWEEP_FAULT_SENTINEL`` hook, which SIGKILLs a worker from
inside the task) must not change a single reported float — the sweep
retries, or quarantines the task onto the serial path, and the grid comes
out identical to an undisturbed run. Also covers the ``jobs`` argument
contract and ledger-based resume through ``evaluate_many``.
"""

import pytest

import repro.bench.suites as suites_mod
from repro.bench.suites import FAULT_SENTINEL_ENV, SuiteRunner, suite_programs
from repro.core.framework import FrameworkError
from repro.runtime.telemetry import RunTelemetry

CONFIGS = ("doall:reduc1-dep0-fn0", "helix:reduc1-dep1-fn2")


def _programs():
    return suite_programs("eembc")[:3]


def _flat(grid):
    return {
        (full_name, config_name): (
            result.speedup, result.coverage,
            result.total_serial, result.total_parallel,
        )
        for full_name, row in grid.items()
        for config_name, result in row.items()
    }


@pytest.fixture()
def baseline(tmp_path):
    runner = SuiteRunner(cache_dir=tmp_path / "baseline")
    return _flat(runner.evaluate_many(_programs(), CONFIGS))


class TestJobsArgument:
    def test_jobs_below_one_rejected(self, tmp_path):
        runner = SuiteRunner(cache_dir=tmp_path / "c")
        for bad in (0, -1, -7):
            with pytest.raises(FrameworkError, match="positive worker count"):
                runner.evaluate_many(_programs()[:1], CONFIGS, jobs=bad)

    def test_jobs_one_is_serial_fast_path(self, tmp_path, monkeypatch,
                                          baseline):
        # jobs=1 must never spawn a pool: poison the executor to prove it.
        def _no_pool(*args, **kwargs):
            raise AssertionError("jobs=1 must not build a process pool")

        monkeypatch.setattr(suites_mod, "ProcessPoolExecutor", _no_pool)
        runner = SuiteRunner(cache_dir=tmp_path / "one")
        grid = runner.evaluate_many(_programs(), CONFIGS, jobs=1)
        assert _flat(grid) == baseline


class TestFaultInjection:
    def test_single_worker_kill_is_retried(self, tmp_path, monkeypatch,
                                           baseline):
        # The sentinel file arms exactly one SIGKILL fleet-wide; the sweep
        # must absorb it via retry and still match the undisturbed grid.
        monkeypatch.setenv(
            FAULT_SENTINEL_ENV, str(tmp_path / "fault-sentinel")
        )
        runner = SuiteRunner(cache_dir=tmp_path / "faulty")
        telemetry = RunTelemetry.create(root=tmp_path / "runs")
        grid = runner.evaluate_many(
            _programs(), CONFIGS, jobs=2, telemetry=telemetry, retries=3
        )
        telemetry.finish()
        assert (tmp_path / "fault-sentinel").exists()
        assert _flat(grid) == baseline
        assert telemetry.retries >= 1
        assert not telemetry.quarantined

    def test_persistent_crash_quarantines_to_serial(self, tmp_path,
                                                    monkeypatch, baseline):
        # "always" kills every pool task on every attempt: the engine must
        # give up on the pool and finish the grid on the serial path.
        monkeypatch.setenv(FAULT_SENTINEL_ENV, "always")
        runner = SuiteRunner(cache_dir=tmp_path / "doomed")
        telemetry = RunTelemetry.create(root=tmp_path / "runs")
        grid = runner.evaluate_many(
            _programs(), CONFIGS, jobs=2, telemetry=telemetry, retries=1
        )
        telemetry.finish()
        assert _flat(grid) == baseline
        assert telemetry.quarantined
        manifest = telemetry.summary()
        assert manifest["tasks_done"] == len(_programs())


class TestLedgerResume:
    def test_resumed_sweep_restores_without_reeval(self, tmp_path, baseline):
        runs_root = tmp_path / "runs"
        first = SuiteRunner(cache_dir=tmp_path / "shared")
        telemetry = RunTelemetry.create(root=runs_root)
        first.evaluate_many(_programs(), CONFIGS, telemetry=telemetry)
        telemetry.finish(status="interrupted")

        # A brand-new process (fresh runner, empty in-memory caches, no
        # profile store) resumes purely from the ledger.
        resumed = RunTelemetry.resume(telemetry.run_id, root=runs_root)
        second = SuiteRunner(cache_dir=tmp_path / "cold")
        grid = second.evaluate_many(_programs(), CONFIGS, telemetry=resumed)
        resumed.finish()
        assert _flat(grid) == baseline
        assert resumed.resumed == len(_programs())
        assert second.profiles_measured == 0

    def test_partial_ledger_resumes_only_covered_tasks(self, tmp_path,
                                                       baseline):
        runs_root = tmp_path / "runs"
        programs = _programs()
        first = SuiteRunner(cache_dir=tmp_path / "shared")
        telemetry = RunTelemetry.create(root=runs_root)
        # Simulate an interrupt after the first task only.
        first.evaluate_many(programs[:1], CONFIGS, telemetry=telemetry)
        telemetry.finish(status="interrupted")

        resumed = RunTelemetry.resume(telemetry.run_id, root=runs_root)
        second = SuiteRunner(cache_dir=tmp_path / "cold")
        grid = second.evaluate_many(programs, CONFIGS, telemetry=resumed)
        resumed.finish()
        assert _flat(grid) == baseline
        assert resumed.resumed == 1
        # Only the uncovered benchmarks were re-profiled.
        assert second.profiles_measured == len(programs) - 1
