"""Persistent profile cache: round-trip fidelity and failure fallbacks.

The contract under test: a profile served from the on-disk store must be
observationally identical to the freshly measured one — every paper
configuration evaluates to bit-identical speedup and coverage — and any
defect in the store (schema drift, corruption, version bumps) silently
degrades to re-profiling, never to wrong numbers.
"""

import json

import pytest

from repro.bench import find_program
from repro.core.config import paper_configurations
from repro.core.framework import Loopapalooza
from repro.runtime.profile_store import (
    PROFILE_CACHE_SCHEMA,
    ProfileStore,
    cache_enabled,
    default_cache_root,
)

FUEL = 50_000_000
BENCH = "specint2000/gzip_like"


@pytest.fixture(scope="module")
def source():
    return find_program(BENCH).source


@pytest.fixture()
def store(tmp_path):
    return ProfileStore(tmp_path / "profiles")


def _fresh(source, store):
    return Loopapalooza(source, name=BENCH, fuel=FUEL, store=store)


def test_round_trip_bit_identical_for_every_config(source, store):
    cold = _fresh(source, store)
    cold.profile()
    assert not cold.profiled_from_cache
    assert store.stats.stores == 1

    warm = _fresh(source, store)
    warm.profile()
    assert warm.profiled_from_cache
    assert store.stats.hits == 1

    for config in paper_configurations():
        measured = cold.evaluate(config)
        cached = warm.evaluate(config)
        # Exact float equality: serving from the cache must not change a
        # single bit of any reported number.
        assert cached.speedup == measured.speedup, config.name
        assert cached.coverage == measured.coverage, config.name
        assert cached.total_serial == measured.total_serial, config.name
        assert cached.total_parallel == measured.total_parallel, config.name


def test_round_trip_preserves_output_and_total_cost(source, store):
    cold = _fresh(source, store)
    cold.profile()
    warm = _fresh(source, store)
    warm.profile()
    assert warm.output == cold.output
    assert warm.total_cost == cold.total_cost


def test_schema_bump_invalidates(source, store):
    cold = _fresh(source, store)
    cold.profile()

    bumped = ProfileStore(store.root, schema=PROFILE_CACHE_SCHEMA + 1)
    relearn = _fresh(source, bumped)
    relearn.profile()
    assert not relearn.profiled_from_cache
    assert bumped.stats.hits == 0
    assert bumped.stats.misses == 1
    # The bumped store writes its own entry alongside the old one.
    assert bumped.stats.stores == 1

    # The original schema still hits its own entry.
    again = _fresh(source, ProfileStore(store.root))
    again.profile()
    assert again.profiled_from_cache


def test_key_depends_on_fuel_and_inline(store):
    key = store.cache_key("int main() { return 0; }", FUEL)
    assert key != store.cache_key("int main() { return 0; }", FUEL + 1)
    assert key != store.cache_key("int main() { return 0; }", FUEL,
                                  inline=True)
    assert key != store.cache_key("int main() { return 1; }", FUEL)
    assert key == store.cache_key("int main() { return 0; }", FUEL)


def test_key_depends_on_transform(store):
    """Stale-hit regression: the transform pipeline changes the loop
    population, so a profile recorded with it off must not warm-start a
    run with it on (or vice versa)."""
    source = "int main() { return 0; }"
    key = store.cache_key(source, FUEL)
    assert key != store.cache_key(source, FUEL, transform=True)
    assert key == store.cache_key(source, FUEL, transform=False)


def test_corrupt_entry_falls_back_to_reprofiling(source, store):
    cold = _fresh(source, store)
    cold.profile()
    [entry] = store.entries()
    entry.write_text(entry.read_text()[: entry.stat().st_size // 2])

    relearn = _fresh(source, store)
    relearn.profile()
    assert not relearn.profiled_from_cache
    assert store.stats.corrupt == 1
    # The corrupt entry was dropped and rewritten by the re-profile.
    assert store.stats.stores == 2

    warm = _fresh(source, store)
    warm.profile()
    assert warm.profiled_from_cache


def test_checksum_mismatch_detected(source, store):
    cold = _fresh(source, store)
    cold.profile()
    [path] = store.entries()
    entry = json.loads(path.read_text())
    entry["payload"]["profile"]["total_cost"] += 1  # bit rot
    path.write_text(json.dumps(entry))

    warm = _fresh(source, store)
    warm.profile()
    assert not warm.profiled_from_cache
    assert store.stats.corrupt == 1
    assert store.entries(), "entry is rewritten after the fallback"


def test_clear_and_info(source, store):
    cold = _fresh(source, store)
    cold.profile()
    info = store.info()
    assert info["entries"] == 1
    assert info["size_bytes"] > 0
    assert store.clear() == 1
    assert store.info()["entries"] == 0


def test_default_root_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_root() == tmp_path / "elsewhere"


class TestCacheEnabledEnv:
    """Regression: REPRO_NO_PROFILE_CACHE=0 used to *disable* the cache
    because any non-empty value was treated as truthy."""

    def test_unset_means_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_PROFILE_CACHE", raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "False", "no", "off", " 0 ", "OFF"])
    def test_falsy_values_keep_cache_enabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_PROFILE_CACHE", value)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "TRUE", "yes", "on", "anything"])
    def test_truthy_values_disable_cache(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_PROFILE_CACHE", value)
        assert not cache_enabled()
