"""Integration tests: the paper's qualitative results (§IV, Figs. 2-5).

These assert the *shapes* the reproduction is supposed to preserve — who
wins, in which order configurations improve, and where the crossovers fall —
not the absolute numbers (the substrate is synthetic; see DESIGN.md).
"""

import pytest

from repro.bench import NON_NUMERIC_SUITES, NUMERIC_SUITES
from repro.core import BEST_HELIX, BEST_PDOALL, LPConfig
from repro.reporting import geomean


@pytest.fixture(scope="module")
def figures(runner):
    """Geomean speedups per (config, suite) for the whole paper matrix."""
    from repro.core import paper_configurations

    table = {}
    for config in paper_configurations():
        for suite in NON_NUMERIC_SUITES + NUMERIC_SUITES:
            speedups = runner.suite_speedups(suite, config)
            table[(config.name, suite)] = geomean(speedups.values())
    return table


def g(figures, config_name, suite):
    return figures[(config_name, suite)]


class TestFig2NonNumeric:
    """SpecINT2000/2006 (paper: 1.1-1.3x DOALL ... 4.6x/7.2x best HELIX)."""

    def test_doall_barely_gains(self, figures):
        for suite in NON_NUMERIC_SUITES:
            assert g(figures, "doall:reduc0-dep0-fn0", suite) < 1.6

    def test_pdoall_min_config_equals_doall(self, figures):
        """Infrequent memory LCDs are not the first bottleneck (paper §IV)."""
        for suite in NON_NUMERIC_SUITES:
            doall = g(figures, "doall:reduc0-dep0-fn0", suite)
            pdoall = g(figures, "pdoall:reduc0-dep0-fn0", suite)
            assert pdoall == pytest.approx(doall, rel=0.02)

    def test_progressive_relaxation_monotone(self, figures):
        ladder = [
            "pdoall:reduc0-dep0-fn0",
            "pdoall:reduc0-dep2-fn0",
            "pdoall:reduc1-dep2-fn0",
        ]
        for suite in NON_NUMERIC_SUITES:
            values = [g(figures, name, suite) for name in ladder]
            assert values == sorted(values)

    def test_dep3_fn3_is_pdoall_upper_bound(self, figures):
        for suite in NON_NUMERIC_SUITES:
            best_realistic = g(figures, "pdoall:reduc1-dep2-fn2", suite)
            upper = g(figures, "pdoall:reduc0-dep3-fn3", suite)
            assert upper >= best_realistic * 0.99

    def test_helix_dep1_fn2_is_the_best_configuration(self, figures):
        """The paper's headline: only dep1-fn2 HELIX unlocks non-numeric
        codes (4.6x and 7.2x)."""
        for suite in NON_NUMERIC_SUITES:
            helix_best = g(figures, "helix:reduc1-dep1-fn2", suite)
            for other in (
                "doall:reduc1-dep0-fn0",
                "pdoall:reduc1-dep2-fn2",
                "helix:reduc0-dep0-fn2",
            ):
                assert helix_best > g(figures, other, suite)

    def test_helix_best_in_paper_ballpark(self, figures):
        """Paper: 4.6x (INT2000) and 7.2x (INT2006). Accept 2x band."""
        assert 2.3 < g(figures, "helix:reduc1-dep1-fn2", "specint2000") < 9.5
        assert 3.6 < g(figures, "helix:reduc1-dep1-fn2", "specint2006") < 15.0

    def test_int2006_above_int2000(self, figures):
        for config_name in (
            "pdoall:reduc1-dep2-fn2",
            "helix:reduc1-dep1-fn2",
            "helix:reduc0-dep0-fn2",
        ):
            assert g(figures, config_name, "specint2006") > g(
                figures, config_name, "specint2000"
            )

    def test_dep1_matters_more_than_dep0_under_helix(self, figures):
        """Frequent register LCDs are the non-numeric bottleneck."""
        for suite in NON_NUMERIC_SUITES:
            dep0 = g(figures, "helix:reduc0-dep0-fn2", suite)
            dep1 = g(figures, "helix:reduc0-dep1-fn2", suite)
            assert dep1 > dep0 * 1.5


class TestFig3Numeric:
    """EEMBC, SpecFP2000/2006 (paper: 1.6-3.1x DOALL ... 21.6-50.6x HELIX)."""

    def test_doall_already_gains(self, figures):
        for suite in NUMERIC_SUITES:
            assert g(figures, "doall:reduc0-dep0-fn0", suite) > 1.4

    def test_reduc1_helps_doall(self, figures):
        for suite in NUMERIC_SUITES:
            assert g(figures, "doall:reduc1-dep0-fn0", suite) > g(
                figures, "doall:reduc0-dep0-fn0", suite
            )

    def test_numeric_beats_nonnumeric_everywhere(self, figures):
        from repro.core import paper_configurations

        for config in paper_configurations():
            numeric = geomean(
                g(figures, config.name, s) for s in NUMERIC_SUITES
            )
            non_numeric = geomean(
                g(figures, config.name, s) for s in NON_NUMERIC_SUITES
            )
            assert numeric > non_numeric

    def test_eembc_prefers_fn2_over_reduc_dep(self, figures):
        """Paper: EEMBC performs better with reduc0-dep0-fn2 PDOALL than
        with reduc1-dep2-fn0 PDOALL."""
        fn2_only = g(figures, "pdoall:reduc0-dep0-fn2", "eembc")
        reduc_dep_only = g(figures, "pdoall:reduc1-dep2-fn0", "eembc")
        assert fn2_only > reduc_dep_only

    def test_fp2000_gains_from_both_reduc1_and_dep2(self, figures):
        base = g(figures, "pdoall:reduc0-dep0-fn0", "specfp2000")
        dep2 = g(figures, "pdoall:reduc0-dep2-fn0", "specfp2000")
        both = g(figures, "pdoall:reduc1-dep2-fn0", "specfp2000")
        assert dep2 > base * 1.1
        assert both > dep2 * 1.1

    def test_helix_best_in_paper_ballpark(self, figures):
        """Paper: 21.6x-50.6x for the best HELIX configuration."""
        for suite in NUMERIC_SUITES:
            value = g(figures, "helix:reduc1-dep1-fn2", suite)
            assert 10 < value < 110


class TestFig4PerBenchmark:
    def test_helix_wins_overall_but_pdoall_wins_named_cases(self, runner):
        """Paper: HELIX is more consistent, but 179_art, 450_soplex,
        482_sphinx and mcf prefer PDOALL."""
        pdoall_wins = []
        helix_wins = 0
        from repro.bench import suite_programs

        for suite in ("specint2000", "specint2006", "specfp2000", "specfp2006"):
            for program in suite_programs(suite):
                pd = runner.evaluate(program, BEST_PDOALL).speedup
                hx = runner.evaluate(program, BEST_HELIX).speedup
                if pd > hx:
                    pdoall_wins.append(program.full_name)
                else:
                    helix_wins += 1
        assert helix_wins > len(pdoall_wins), "HELIX should win most benchmarks"
        for name in (
            "specint2000/mcf_like",
            "specint2006/mcf_like06",
            "specfp2000/art_like",
            "specfp2006/soplex_like",
            "specfp2006/sphinx_like",
        ):
            assert name in pdoall_wins, f"{name} should prefer PDOALL (Fig. 4)"


class TestFig5Coverage:
    def test_coverage_ordering(self, runner):
        """Paper Fig. 5: coverage grows PDOALL-dep0-fn2 < HELIX-dep0-fn2 <
        HELIX-dep1-fn2, and the jump explains the non-numeric speedups."""
        configs = [
            LPConfig("pdoall", 0, 0, 2),
            LPConfig("helix", 0, 0, 2),
            LPConfig("helix", 0, 1, 2),
        ]
        for suite in NON_NUMERIC_SUITES:
            means = []
            for config in configs:
                coverages = runner.suite_coverages(suite, config)
                means.append(sum(coverages.values()) / len(coverages))
            assert means[0] <= means[1] + 0.02
            assert means[1] < means[2]
            assert means[2] > 0.5, "dep1-fn2 HELIX must reach high coverage"

    def test_coverage_within_bounds(self, runner):
        for suite in NON_NUMERIC_SUITES + NUMERIC_SUITES:
            coverages = runner.suite_coverages(suite, BEST_HELIX)
            assert all(0.0 <= c <= 1.0 for c in coverages.values())
