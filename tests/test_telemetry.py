"""Run telemetry: ledger/manifest round-trips and resume semantics.

The contract under test: every completed task checkpointed through
:class:`RunTelemetry` can be restored from the on-disk ledger by a later
process with *bit-identical* results (JSON floats round-trip exactly via
``repr``), the manifest aggregates survive replay, and defects in the
ledger (corrupt lines, schema drift, unknown runs) fail loudly or degrade
to re-evaluation — never to wrong numbers.
"""

import json

import pytest

from repro.bench.suites import SuiteRunner, suite_programs
from repro.runtime.telemetry import (
    RUN_LEDGER_SCHEMA,
    RunTelemetry,
    format_run_summary,
    format_runs_table,
    list_runs,
    load_manifest,
    purge_runs,
    runs_root,
)

CONFIGS = ("doall:reduc1-dep0-fn0", "pdoall:reduc1-dep2-fn2")


@pytest.fixture(scope="module")
def grid_results():
    """Real EvaluationResults for two cheap benchmarks."""
    runner = SuiteRunner()
    programs = suite_programs("eembc")[:2]
    grid = runner.evaluate_many(programs, CONFIGS)
    return grid


def test_create_writes_ledger_and_manifest(tmp_path):
    telemetry = RunTelemetry.create(root=tmp_path)
    assert telemetry.ledger_path.exists()
    assert telemetry.manifest_path.exists()
    first = json.loads(telemetry.ledger_path.read_text().splitlines()[0])
    assert first["type"] == "start"
    assert first["schema"] == RUN_LEDGER_SCHEMA


def test_task_done_round_trips_bit_identical(tmp_path, grid_results):
    telemetry = RunTelemetry.create(root=tmp_path)
    for task, results in grid_results.items():
        telemetry.task_done(task, results, wall_s=0.5, cache_hit=False,
                            instructions=123, path="pool")
    telemetry.finish()

    resumed = RunTelemetry.resume(telemetry.run_id, root=tmp_path)
    assert resumed.ledger_tasks == len(grid_results)
    for task, results in grid_results.items():
        restored = resumed.completed_results(task, list(CONFIGS))
        assert restored is not None
        for name, result in results.items():
            other = restored[name]
            assert other.speedup == result.speedup
            assert other.coverage == result.coverage
            assert other.total_serial == result.total_serial
            assert other.total_parallel == result.total_parallel
            assert other.config.name == result.config.name
            assert set(other.loops) == set(result.loops)
            for loop_id, summary in result.loops.items():
                assert other.loops[loop_id].to_dict() == summary.to_dict()


def test_completed_results_requires_full_coverage(tmp_path, grid_results):
    telemetry = RunTelemetry.create(root=tmp_path)
    task, results = next(iter(grid_results.items()))
    only_first = {CONFIGS[0]: results[CONFIGS[0]]}
    telemetry.task_done(task, only_first)
    assert telemetry.completed_results(task, [CONFIGS[0]]) is not None
    assert telemetry.completed_results(task, list(CONFIGS)) is None
    assert telemetry.completed_results("unknown/task", [CONFIGS[0]]) is None


def test_resume_unknown_run_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        RunTelemetry.resume("20990101-000000-abcdef", root=tmp_path)


def test_resume_rejects_foreign_schema(tmp_path):
    run_dir = tmp_path / "old-run"
    run_dir.mkdir()
    (run_dir / "ledger.jsonl").write_text(
        json.dumps({"type": "start", "schema": RUN_LEDGER_SCHEMA + 99}) + "\n"
    )
    with pytest.raises(ValueError, match="schema"):
        RunTelemetry.resume("old-run", root=tmp_path)


def test_corrupt_ledger_lines_degrade_gracefully(tmp_path, grid_results):
    telemetry = RunTelemetry.create(root=tmp_path)
    task, results = next(iter(grid_results.items()))
    telemetry.task_done(task, results)
    with open(telemetry.ledger_path, "a") as handle:
        handle.write("{not json\n")
    resumed = RunTelemetry.resume(telemetry.run_id, root=tmp_path)
    assert resumed.corrupt_lines == 1
    assert resumed.completed_results(task, list(CONFIGS)) is not None


def test_manifest_aggregates(tmp_path, grid_results):
    telemetry = RunTelemetry.create(root=tmp_path)
    tasks = list(grid_results)
    telemetry.task_done(tasks[0], grid_results[tasks[0]],
                        wall_s=1.0, cache_hit=True, instructions=100)
    telemetry.task_retry(tasks[1], attempt=1, reason="worker-crash")
    telemetry.task_done(tasks[1], grid_results[tasks[1]], attempt=2,
                        wall_s=2.0, cache_hit=False, instructions=50)
    telemetry.finish()

    manifest = load_manifest(telemetry.run_id, root=tmp_path)
    assert manifest["status"] == "complete"
    assert manifest["tasks_done"] == 2
    assert manifest["retries"] == 1
    assert manifest["cache_hits"] == 1
    assert manifest["cache_misses"] == 1
    assert manifest["instructions"] == 150
    assert manifest["task_wall_s"] == pytest.approx(3.0)
    loops_total = sum(
        len(result.loops)
        for row in grid_results.values()
        for result in row.values()
    )
    assert (manifest["outcomes"]["parallel_loops"]
            + manifest["outcomes"]["serial_loops"]) == loops_total

    # Replay reproduces the same aggregates.
    resumed = RunTelemetry.resume(telemetry.run_id, root=tmp_path)
    replayed = resumed.summary()
    for key in ("tasks_done", "retries", "cache_hits", "cache_misses",
                "instructions", "outcomes"):
        assert replayed[key] == manifest[key]


def test_quarantine_is_run_history(tmp_path, grid_results):
    # Quarantine records persist even after the serial fallback completes
    # the task: the manifest documents that the pool path failed, like the
    # retry counter does. The results themselves are still restorable.
    telemetry = RunTelemetry.create(root=tmp_path)
    task, results = next(iter(grid_results.items()))
    telemetry.task_quarantined(task, "worker-crash")
    telemetry.task_done(task, results, path="serial-fallback")
    assert telemetry.quarantined == {task: "worker-crash"}
    assert telemetry.completed_results(task, list(CONFIGS)) is not None
    resumed = RunTelemetry.resume(telemetry.run_id, root=tmp_path)
    assert resumed.quarantined == {task: "worker-crash"}


def test_runs_registry_and_formatting(tmp_path, grid_results):
    a = RunTelemetry.create(root=tmp_path)
    task, results = next(iter(grid_results.items()))
    a.task_done(task, results)
    a.finish()
    b = RunTelemetry.create(root=tmp_path)
    b.finish(status="interrupted")

    manifests = list_runs(root=tmp_path)
    assert {m["run_id"] for m in manifests} == {a.run_id, b.run_id}
    table = format_runs_table(manifests)
    assert a.run_id in table and b.run_id in table
    assert "interrupted" in table
    summary = format_run_summary(load_manifest(a.run_id, root=tmp_path))
    assert "tasks" in summary

    removed = purge_runs(root=tmp_path)
    assert removed == 2
    assert list_runs(root=tmp_path) == []


def test_runs_root_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs-here"))
    assert runs_root() == tmp_path / "runs-here"


def test_describe_mentions_retries(tmp_path, grid_results):
    telemetry = RunTelemetry.create(root=tmp_path)
    task, results = next(iter(grid_results.items()))
    telemetry.task_retry(task, attempt=1, reason="timeout")
    telemetry.task_done(task, results, attempt=2)
    line = telemetry.describe()
    assert telemetry.run_id in line
    assert "1 retries" in line
