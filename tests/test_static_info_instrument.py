"""Static classification (compile-time component) and instrumentation tests."""

from repro.core import (
    CALL_INSTRUMENTED,
    CALL_PURE,
    CALL_THREAD_SAFE,
    CALL_UNSAFE,
    PHI_COMPUTABLE,
    PHI_NONCOMPUTABLE,
    PHI_REDUCTION,
    Loopapalooza,
    ModuleStaticInfo,
    build_instrumentation,
)
from repro.frontend import compile_source


def static_for(source):
    module = compile_source(source)
    return ModuleStaticInfo(module)


def the_loop(info, function="main", index=0):
    loops = sorted(
        (l for l in info.loops.values() if l.function_name == function),
        key=lambda l: l.loop_id,
    )
    return loops[index]


class TestPhiClassification:
    def test_iv_reduction_noncomputable_split(self):
        info = static_for(
            """
            float OUT = 0.0;
            int A[64];
            int main() {
              int i;
              float acc = 0.0;
              int state = 1;
              for (i = 0; i < 64; i = i + 1) {
                acc = acc + (float)A[i];
                state = (state * 5 + A[i]) & 1023;
                A[i] = state;
              }
              OUT = acc;
              return state;
            }
            """
        )
        loop = the_loop(info)
        classes = {}
        for key, cls in loop.phi_classes.items():
            classes[key.rsplit(":", 1)[1]] = cls
        assert classes["i"] == PHI_COMPUTABLE
        assert classes["acc"] == PHI_REDUCTION
        assert classes["state"] == PHI_NONCOMPUTABLE
        assert loop.reduction_kinds
        assert loop.noncomputable_phis
        assert loop.reduction_phis

    def test_trip_count_hint(self):
        info = static_for(
            """
            int main() {
              int i; int s = 0;
              for (i = 0; i < 17; i = i + 1) { s = s + i; }
              return s;
            }
            """
        )
        assert the_loop(info).trip_count_hint == 17


class TestCallClasses:
    SOURCE = """
    int G = 0;
    int pure_fn(int x) { return x * 2; }
    int dirty_fn(int x) { G = x; return x; }
    int noisy_fn(int x) { print_int(x); return x; }
    int A[40];
    int main() {
      int i;
      for (i = 0; i < 10; i = i + 1) { A[i] = pure_fn(i); }
      for (i = 0; i < 10; i = i + 1) { A[i] = dirty_fn(i); }
      for (i = 0; i < 10; i = i + 1) { A[i] = noisy_fn(i); }
      for (i = 0; i < 10; i = i + 1) { memset_i32(&A[i], i, 1); }
      for (i = 0; i < 10; i = i + 1) { A[i + 10] = A[i]; }
      return G;
    }
    """

    def test_classes_per_loop(self):
        info = static_for(self.SOURCE)
        loops = sorted(
            (l for l in info.loops.values() if l.function_name == "main"),
            key=lambda l: int("".join(ch for ch in l.loop_id if ch.isdigit())),
        )
        assert loops[0].call_classes == {CALL_PURE}
        assert loops[1].call_classes == {CALL_INSTRUMENTED}
        assert loops[2].call_classes == {CALL_UNSAFE}
        assert loops[3].call_classes == {CALL_THREAD_SAFE}
        assert loops[4].call_classes == set()

    def test_fn_legality_matrix(self):
        info = static_for(self.SOURCE)
        loops = sorted(
            (l for l in info.loops.values() if l.function_name == "main"),
            key=lambda l: int("".join(ch for ch in l.loop_id if ch.isdigit())),
        )
        pure, inst, unsafe, safe, none = loops
        # fn0: any call serializes
        assert all(l.serial_under_fn(0) for l in (pure, inst, unsafe, safe))
        assert not none.serial_under_fn(0)
        # fn1: only pure calls pass
        assert not pure.serial_under_fn(1)
        assert inst.serial_under_fn(1)
        assert safe.serial_under_fn(1)
        # fn2: everything but unsafe passes
        assert not inst.serial_under_fn(2)
        assert not safe.serial_under_fn(2)
        assert unsafe.serial_under_fn(2)
        # fn3: everything passes
        assert not unsafe.serial_under_fn(3)

    def test_transitive_unsafe_taint(self):
        info = static_for(
            """
            int wrapper(int x) { return x + rand(); }
            int A[8];
            int main() {
              int i;
              for (i = 0; i < 8; i = i + 1) { A[i] = wrapper(i); }
              return A[0];
            }
            """
        )
        loop = the_loop(info)
        assert CALL_UNSAFE in loop.call_classes
        assert loop.serial_under_fn(2)
        assert not loop.serial_under_fn(3)

    def test_census_totals(self):
        info = static_for(self.SOURCE)
        census = info.census()
        assert census["loops"] == 5
        assert census["loops_with_calls"] == 4
        assert census["loops_with_unsafe_calls"] == 1
        assert census["computable_phis"] >= 5  # one IV per loop


class TestInstrumentationPlan:
    def test_plans_exist_for_functions_with_loops(self):
        module = compile_source(
            """
            int A[16];
            int helper(int x) { return x + 1; }
            int main() {
              int i;
              for (i = 0; i < 16; i = i + 1) { A[i] = helper(i); }
              return 0;
            }
            """
        )
        info = ModuleStaticInfo(module)
        plans = build_instrumentation(info)
        assert "main" in plans
        assert "helper" not in plans  # no loops, nothing to instrument

    def test_edge_actions_cover_enter_iter_exit(self):
        module = compile_source(
            """
            int main() {
              int i; int s = 0;
              for (i = 0; i < 4; i = i + 1) { s = s + i; }
              return s;
            }
            """
        )
        info = ModuleStaticInfo(module)
        plan = build_instrumentation(info)["main"]
        kinds = sorted(
            kind for actions in plan.edge_actions.values()
            for kind, _ in actions
        )
        assert kinds == ["enter", "exit", "iter"]

    def test_break_loop_has_multiple_exit_actions(self):
        module = compile_source(
            """
            int A[50];
            int main() {
              int i;
              for (i = 0; i < 50; i = i + 1) {
                if (A[i] == 3) { break; }
              }
              return i;
            }
            """
        )
        info = ModuleStaticInfo(module)
        plan = build_instrumentation(info)["main"]
        exits = [
            1 for actions in plan.edge_actions.values()
            for kind, _ in actions if kind == "exit"
        ]
        assert len(exits) >= 2

    def test_nested_exit_ordering_innermost_first(self):
        lp = Loopapalooza(
            """
            int A[100];
            int main() {
              int i; int j;
              for (i = 0; i < 10; i = i + 1) {
                for (j = 0; j < 10; j = j + 1) {
                  if (A[i*10+j] == 999) { return 1; }
                  A[i*10+j] = i;
                }
              }
              return 0;
            }
            """,
            "nested",
        )
        # the profile must be well nested (no FrameworkError at runtime)
        profile = lp.profile()
        outer = profile.top_level[0]
        assert outer.children

    def test_only_noncomputable_phis_tracked(self):
        module = compile_source(
            """
            float OUT = 0.0;
            int main() {
              int i;
              float acc = 0.0;
              for (i = 0; i < 8; i = i + 1) { acc = acc + 1.5; }
              OUT = acc;
              return 0;
            }
            """
        )
        info = ModuleStaticInfo(module)
        plan = build_instrumentation(info)["main"]
        tracked = [
            key for specs in plan.latch_values.values() for key, _ in specs
        ]
        assert all(":acc" in key for key in tracked)
