"""Error-type formatting and hierarchy tests."""

import pytest

from repro.errors import (
    ConfigError,
    FrameworkError,
    FuelExhausted,
    InterpError,
    IRError,
    ParseError,
    ReproError,
    SemanticError,
    TrapError,
    VerificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("cls", [
        IRError, VerificationError, ParseError, SemanticError, InterpError,
        TrapError, FuelExhausted, ConfigError, FrameworkError,
    ])
    def test_everything_is_a_repro_error(self, cls):
        if cls is VerificationError:
            instance = cls(["p"])
        elif cls is FuelExhausted:
            instance = cls(100)
        else:
            instance = cls("boom")
        assert isinstance(instance, ReproError)

    def test_traps_are_interp_errors(self):
        assert issubclass(TrapError, InterpError)
        assert issubclass(FuelExhausted, InterpError)


class TestFormatting:
    def test_parse_error_positions(self):
        error = ParseError("bad token", line=4, column=7)
        assert "line 4" in str(error)
        assert "col 7" in str(error)
        assert error.line == 4 and error.column == 7

    def test_parse_error_without_position(self):
        assert str(ParseError("oops")) == "oops"

    def test_semantic_error_line(self):
        assert "line 12" in str(SemanticError("bad", line=12))

    def test_verification_error_lists_all_problems(self):
        error = VerificationError(["first", "second"])
        assert "first" in str(error) and "second" in str(error)
        assert error.problems == ["first", "second"]

    def test_fuel_exhausted_carries_budget(self):
        error = FuelExhausted(12345)
        assert error.budget == 12345
        assert "12345" in str(error)


class TestSurfacesInPractice:
    def test_frontend_raises_parse_error_with_position(self):
        from repro.frontend import parse

        with pytest.raises(ParseError) as info:
            parse("int main() {\n  return @;\n}")
        assert info.value.line == 2

    def test_interpreter_trap_message_names_cause(self):
        from helpers import run_minic

        with pytest.raises(TrapError, match="division by zero"):
            run_minic("int z = 0; int main() { return 1 / z; }")

    def test_config_error_names_flag(self):
        from repro.core import LPConfig

        with pytest.raises(ConfigError, match="dep"):
            LPConfig("pdoall", dep=9)
