"""Interpreter and intrinsics tests: memory model, costs, hooks neutrality."""

import math

import pytest

from repro.frontend import compile_source
from repro.interp import INTRINSICS, AddressSpace, Interpreter, run_module
from repro.interp.intrinsics import _hash32

from helpers import run_minic


class TestAddressSpace:
    def test_global_then_stack_layout(self):
        space = AddressSpace()

        class FakeGlobal:
            def flat_initializer(self):
                return [1, 2, 3]

        base = space.add_global(FakeGlobal())
        assert base == 0
        assert space.load(2) == 3
        frame = space.allocate(2, 0, None)
        assert frame == 3
        space.store(frame, 42)
        assert space.load(frame) == 42

    def test_release_pops_allocations(self):
        space = AddressSpace()
        a = space.allocate(4, 0, {"x": 1})
        b = space.allocate(4, 0, {"y": 2})
        assert space.marks_for(b) == {"y": 2}
        space.release_to(b)
        with pytest.raises(Exception):
            space.load(b)
        assert space.marks_for(a) == {"x": 1}

    def test_reallocation_zeroes(self):
        space = AddressSpace()
        a = space.allocate(2, 0, None)
        space.store(a, 99)
        space.release_to(a)
        a2 = space.allocate(2, 0, None)
        assert a2 == a
        assert space.load(a2) == 0

    def test_marks_for_globals_is_none(self):
        space = AddressSpace()

        class FakeGlobal:
            def flat_initializer(self):
                return [0] * 4

        space.add_global(FakeGlobal())
        assert space.marks_for(1) is None


class TestCostModel:
    def test_cost_equals_dynamic_instruction_count(self):
        # A hand-countable straight-line program.
        module = compile_source("int main() { return 1; }")
        result, machine = run_module(module)
        # entry: ret -> exactly 1 instruction.
        assert machine.cost == 1

    def test_loop_cost_scales_with_trip_count(self):
        def cost_for(n):
            module = compile_source(
                f"""
                int A[2048];
                int main() {{
                  int i;
                  for (i = 0; i < {n}; i = i + 1) {{ A[i] = i; }}
                  return 0;
                }}
                """
            )
            _, machine = run_module(module)
            return machine.cost

        c100, c200 = cost_for(100), cost_for(200)
        per_iter = (c200 - c100) / 100
        assert 4 <= per_iter <= 12

    def test_instrumentation_does_not_change_cost_or_result(self):
        from repro.core import Loopapalooza

        source = """
        int A[64];
        int main() {
          int i; int s = 0;
          for (i = 1; i < 64; i = i + 1) { A[i] = A[i-1] + i; s = s + A[i]; }
          print_int(s);
          return s & 32767;
        }
        """
        lp = Loopapalooza(source, "neutrality")
        profile = lp.profile()
        plain_result, plain_cost, plain_output = lp.run_uninstrumented()
        assert profile.result == plain_result
        assert profile.total_cost == plain_cost
        assert lp.output == plain_output


class TestIntrinsics:
    def test_math_intrinsics(self):
        result, _, output = run_minic(
            """
            int main() {
              print_float(sqrt(16.0));
              print_float(fabs(-2.5));
              print_float(pow(2.0, 10.0));
              print_float(fmin(1.0, 2.0) + fmax(1.0, 2.0));
              print_float(floor(3.9));
              return 0;
            }
            """
        )
        assert output == [4.0, 2.5, 1024.0, 3.0, 3.0]

    def test_trig_and_log(self):
        _, _, output = run_minic(
            """
            int main() {
              print_float(sin(0.0) + cos(0.0));
              print_float(exp(0.0));
              print_float(log(1.0));
              return 0;
            }
            """
        )
        assert output == [1.0, 1.0, 0.0]

    def test_int_helpers(self):
        result, _, _ = run_minic(
            "int main() { return iabs(-5) * 100 + imin(3, 7) * 10 + imax(3, 7); }"
        )
        assert result == 537

    def test_hash_is_deterministic_and_spread(self):
        values = {_hash32(i) & 0xFF for i in range(100)}
        assert len(values) > 60  # decent dispersion
        result1, _, _ = run_minic("int main() { return hash_i32(1234) & 65535; }")
        result2, _, _ = run_minic("int main() { return hash_i32(1234) & 65535; }")
        assert result1 == result2

    def test_noise_in_unit_interval(self):
        _, _, output = run_minic(
            """
            int main() {
              int i;
              for (i = 0; i < 20; i = i + 1) { print_float(noise_f64(i)); }
              return 0;
            }
            """
        )
        assert all(0.0 <= v < 1.0 for v in output)

    def test_rand_respects_seed(self):
        source = """
        int main() {
          srand(7);
          int a = rand();
          srand(7);
          int b = rand();
          return a == b;
        }
        """
        result, _, _ = run_minic(source)
        assert result == 1

    def test_memset_memcpy(self):
        result, _, _ = run_minic(
            """
            int A[8]; int B[8];
            int main() {
              memset_i32(A, 5, 8);
              memcpy_i32(B, A, 8);
              return B[0] + B[7];
            }
            """
        )
        assert result == 10

    def test_memset_f64(self):
        result, _, _ = run_minic(
            """
            float X[4]; float Y[4];
            int main() {
              memset_f64(X, 2.5, 4);
              memcpy_f64(Y, X, 4);
              return (int)(Y[3] * 4.0);
            }
            """
        )
        assert result == 10

    def test_sqrt_of_negative_traps(self):
        from repro.errors import TrapError

        with pytest.raises(TrapError):
            run_minic("float x = -1.0; int main() { print_float(sqrt(x)); return 0; }")

    def test_registry_attributes(self):
        assert INTRINSICS["sqrt"].is_pure
        assert INTRINSICS["hash_i32"].is_pure
        assert not INTRINSICS["rand"].is_pure
        assert not INTRINSICS["rand"].is_thread_safe
        assert INTRINSICS["memcpy_i32"].is_thread_safe
        assert not INTRINSICS["memcpy_i32"].is_pure
        assert not INTRINSICS["print_int"].is_thread_safe

    def test_intrinsic_memory_traffic_is_observed(self):
        """memcpy through an intrinsic must feed conflict tracking."""
        from repro.core import Loopapalooza

        lp = Loopapalooza(
            """
            int A[32]; int B[32];
            int main() {
              int i;
              for (i = 1; i < 16; i = i + 1) {
                memcpy_i32(&A[i], &A[i-1], 1);   // cross-iteration RAW
              }
              return A[15];
            }
            """,
            "memchain",
        )
        profile = lp.profile()
        hot = [inv for inv in profile.all_invocations() if inv.num_iterations > 4][0]
        assert hot.conflict_count > 0


class TestUnsignedIntOps:
    """``lshr``/``udiv``/``urem``: LLVM unsigned semantics over the
    two's-complement bit pattern of i32 values."""

    @staticmethod
    def _run(opcode, a, b):
        from repro.ir import I32, IRBuilder, Module

        module = Module("unsigned_ops")
        function = module.add_function("f", I32, [I32, I32])
        builder = IRBuilder(function.append_block("entry"))
        lhs, rhs = function.arguments
        builder.ret(builder.binop(opcode, lhs, rhs, "r"))
        return Interpreter(module).run("f", (a, b))

    def test_lshr_positive_matches_ashr(self):
        assert self._run("lshr", 20, 2) == 5
        assert self._run("lshr", 1, 0) == 1

    def test_lshr_shifts_in_zeros(self):
        # -1 is 0xFFFFFFFF; a logical shift right by one gives 0x7FFFFFFF.
        assert self._run("lshr", -1, 1) == 0x7FFFFFFF
        assert self._run("lshr", -8, 2) == 0x3FFFFFFE
        assert self._run("lshr", -1, 31) == 1

    def test_lshr_masks_shift_amount(self):
        # Like shl/ashr, the shift amount is taken mod 32.
        assert self._run("lshr", -1, 33) == self._run("lshr", -1, 1)

    def test_udiv_unsigned_view(self):
        assert self._run("udiv", 7, 2) == 3
        # -1 reads as 4294967295; halved gives INT_MAX.
        assert self._run("udiv", -1, 2) == 0x7FFFFFFF
        # 0xFFFFFFFC // 0xFFFFFFFE == 0: the divisor reads as a huge
        # unsigned value just above the dividend, not as -2.
        assert self._run("udiv", -4, -2) == 0
        assert self._run("udiv", -2, -4) == 1
        assert self._run("udiv", 7, -1) == 0

    def test_urem_unsigned_view(self):
        assert self._run("urem", 7, 3) == 1
        assert self._run("urem", -1, 2) == 1
        # 0xFFFFFFFC % 0xFFFFFFFE == 0xFFFFFFFC, re-wrapped to signed -4.
        assert self._run("urem", -4, -2) == -4
        assert self._run("urem", 7, -1) == 7

    def test_results_wrap_to_signed(self):
        assert self._run("udiv", -4, 1) == -4
        assert all(
            -(1 << 31) <= self._run(op, a, b) < (1 << 31)
            for op in ("lshr", "udiv", "urem")
            for a in (-(1 << 31), -1, 0, 1, (1 << 31) - 1)
            for b in (1, 2, 31, -1)
        )

    def test_zero_divisor_traps(self):
        from repro.errors import TrapError

        with pytest.raises(TrapError, match="division by zero"):
            self._run("udiv", 1, 0)
        with pytest.raises(TrapError, match="remainder by zero"):
            self._run("urem", 1, 0)

    def test_constfold_agrees_with_interpreter(self):
        from repro.ir import I32, IRBuilder, Module
        from repro.ir.values import ConstantInt
        from repro.passes.constfold import run_constfold

        cases = [
            ("lshr", -1, 1), ("lshr", -8, 2), ("lshr", 20, 2),
            ("udiv", -1, 2), ("udiv", -4, -2), ("udiv", 7, 2),
            ("urem", -1, 2), ("urem", -4, -2), ("urem", 7, 3),
        ]
        for opcode, a, b in cases:
            executed = self._run(opcode, a, b)
            module = Module("fold")
            function = module.add_function("f", I32, [])
            block = function.append_block("entry")
            builder = IRBuilder(block)
            builder.ret(
                builder.binop(
                    opcode, builder.const_int(a), builder.const_int(b), "r"
                )
            )
            assert run_constfold(function) == 1
            folded = block.terminator.value
            assert isinstance(folded, ConstantInt)
            assert folded.value == executed, (opcode, a, b)

    def test_constfold_leaves_zero_divisor_alone(self):
        from repro.ir import I32, IRBuilder, Module
        from repro.passes.constfold import run_constfold

        for opcode in ("udiv", "urem"):
            module = Module("nofold")
            function = module.add_function("f", I32, [])
            builder = IRBuilder(function.append_block("entry"))
            builder.ret(
                builder.binop(
                    opcode, builder.const_int(1), builder.const_int(0), "r"
                )
            )
            assert run_constfold(function) == 0

    def test_builder_helpers_verify(self):
        from repro.ir import I32, IRBuilder, Module, verify_module

        module = Module("helpers")
        function = module.add_function("f", I32, [I32, I32])
        builder = IRBuilder(function.append_block("entry"))
        lhs, rhs = function.arguments
        assert builder.lshr(lhs, rhs).opcode == "lshr"
        assert builder.udiv(lhs, rhs).opcode == "udiv"
        assert builder.urem(lhs, rhs).opcode == "urem"
        builder.ret(builder.const_int(0))
        assert verify_module(module)

    def test_printer_emits_opcodes(self):
        from repro.ir import I32, IRBuilder, Module, print_module

        module = Module("rt")
        function = module.add_function("f", I32, [I32, I32])
        builder = IRBuilder(function.append_block("entry"))
        lhs, rhs = function.arguments
        value = builder.lshr(builder.udiv(lhs, rhs), builder.urem(lhs, rhs))
        builder.ret(value)
        text = print_module(module)
        for opcode in ("lshr", "udiv", "urem"):
            assert opcode in text


class TestSignedDivOverflow:
    """``sdiv``/``srem`` at the INT_MIN / -1 overflow corner: LLVM wraps the
    quotient to the type (``INT_MIN sdiv -1 == INT_MIN``) and the remainder
    to zero; a naive Python ``//`` would return ``2**31`` instead."""

    INT_MIN = -(1 << 31)

    @staticmethod
    def _run(opcode, a, b, backend=None):
        from repro.ir import I32, IRBuilder, Module

        module = Module("signed_ops")
        function = module.add_function("f", I32, [I32, I32])
        builder = IRBuilder(function.append_block("entry"))
        lhs, rhs = function.arguments
        builder.ret(builder.binop(opcode, lhs, rhs, "r"))
        return Interpreter(module, backend=backend).run("f", (a, b))

    def test_sdiv_int_min_by_minus_one_wraps(self):
        assert self._run("sdiv", self.INT_MIN, -1) == self.INT_MIN

    def test_srem_int_min_by_minus_one_is_zero(self):
        assert self._run("srem", self.INT_MIN, -1) == 0

    def test_truncation_toward_zero(self):
        assert self._run("sdiv", -7, 2) == -3
        assert self._run("sdiv", 7, -2) == -3
        assert self._run("srem", -7, 2) == -1
        assert self._run("srem", 7, -2) == 1

    def test_both_backends_agree_on_the_corner(self):
        for backend in ("closure", "jit"):
            assert self._run("sdiv", self.INT_MIN, -1, backend) == self.INT_MIN
            assert self._run("srem", self.INT_MIN, -1, backend) == 0

    def test_zero_divisor_traps(self):
        from repro.errors import TrapError

        with pytest.raises(TrapError, match="division by zero"):
            self._run("sdiv", 1, 0)
        with pytest.raises(TrapError, match="remainder by zero"):
            self._run("srem", 1, 0)

    def test_constfold_agrees_on_the_corner(self):
        from repro.ir import I32, IRBuilder, Module
        from repro.ir.values import ConstantInt
        from repro.passes.constfold import run_constfold

        for opcode, expected in (("sdiv", self.INT_MIN), ("srem", 0)):
            module = Module("fold")
            function = module.add_function("f", I32, [])
            block = function.append_block("entry")
            builder = IRBuilder(block)
            builder.ret(
                builder.binop(
                    opcode,
                    builder.const_int(self.INT_MIN),
                    builder.const_int(-1),
                    "r",
                )
            )
            assert run_constfold(function) == 1
            folded = block.terminator.value
            assert isinstance(folded, ConstantInt)
            assert folded.value == expected, opcode
