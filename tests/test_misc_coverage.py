"""Remaining-corner tests: wide-integer IR paths, evaluate_many, and the
figure helpers not exercised elsewhere."""

import pytest

from repro.ir import (
    I32,
    I64,
    IRBuilder,
    Module,
    verify_module,
)
from repro.interp.interpreter import run_module


class TestWideIntegerIR:
    """The frontend only emits i32/f64, but the IR and interpreter support
    i64 arithmetic and the zext/trunc casts; exercise them directly."""

    def build(self, make_body):
        module = Module("wide")
        f = module.add_function("f", I32, [I32])
        b = IRBuilder(f.append_block("entry"))
        make_body(b, f.arguments[0])
        verify_module(module)
        return module

    def run(self, module, value):
        result, _ = run_module(module, function_name="f", args=[value])
        return result

    def test_zext_then_i64_arithmetic_then_trunc(self):
        def body(b, arg):
            wide = b.cast("zext", arg, I64, "wide")
            squared = b.mul(wide, wide, "sq")
            shifted = b.ashr(squared, b.const_int(16, I64), "sh")
            back = b.cast("trunc", shifted, I32, "narrow")
            b.ret(back)

        module = self.build(body)
        # 100000^2 = 10^10 overflows i32 but fits i64.
        assert self.run(module, 100_000) == (100_000 * 100_000) >> 16

    def test_trunc_wraps_to_narrow_range(self):
        def body(b, arg):
            wide = b.cast("zext", arg, I64, "wide")
            big = b.add(wide, b.const_int(2**33, I64), "big")
            back = b.cast("trunc", big, I32, "narrow")
            b.ret(back)

        module = self.build(body)
        assert self.run(module, 5) == 5  # 2^33 vanishes in the low 32 bits

    def test_i64_comparison(self):
        def body(b, arg):
            wide = b.cast("zext", arg, I64, "wide")
            flag = b.icmp("sgt", wide, b.const_int(10, I64), "flag")
            b.ret(b.cast("zext", flag, I32))

        module = self.build(body)
        assert self.run(module, 11) == 1
        assert self.run(module, 9) == 0


class TestEvaluateMany:
    def test_returns_keyed_results(self, doall_kernel):
        from repro.core import LPConfig

        results = doall_kernel.evaluate_many(
            ["doall:reduc0-dep0-fn2", LPConfig("helix", 1, 1, 2)]
        )
        assert set(results) == {
            "doall:reduc0-dep0-fn2", "helix:reduc1-dep1-fn2",
        }
        for result in results.values():
            assert result.speedup >= 1.0

    def test_evaluate_all_shares_cache(self, doall_kernel):
        from repro.core import evaluate_all, paper_configurations

        profile = doall_kernel.profile()
        results = evaluate_all(
            profile, doall_kernel.static_info, paper_configurations()
        )
        assert len(results) == 14


class TestFigureHelpers:
    def test_figure4_runs_on_shared_runner(self, runner):
        from repro.reporting import figure4_per_benchmark

        data = figure4_per_benchmark(runner)
        assert len(data) == 40
        assert all(
            set(entry) == {"pdoall", "helix"} for entry in data.values()
        )

    def test_figure5_percentages(self, runner):
        from repro.reporting import figure5_coverage

        rows = figure5_coverage(runner)
        for row in rows.values():
            for value in row.values():
                assert 0.0 <= value <= 100.0

    def test_cli_figures_suite_mode(self, tmp_path):
        from repro.cli import main
        import io

        out = io.StringIO()
        code = main(["figures", "--suite", "eembc"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "helix:reduc1-dep1-fn2" in text
        assert text.count("x") >= 14
