"""Differential testing: random MiniC programs, three-way equivalence.

hypothesis generates small structured programs; each must behave identically

1. unoptimized (raw codegen) vs fully optimized (the standard pipeline),
2. optimized vs its print->parse round trip,
3. plain execution vs instrumented profiling (hook neutrality).

Any divergence is a real compiler/runtime bug, and hypothesis shrinks the
witness program.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse as parse_minic
from repro.frontend.sema import analyze
from repro.interp.interpreter import run_module
from repro.ir import parse_module, print_module, verify_module
from repro.passes import run_standard_pipeline

# ---------------------------------------------------------------------------
# Program generator: a small structured AST rendered to MiniC source.
# All array indices are masked to 64 slots and division is avoided, so every
# generated program is trap-free and terminates.
# ---------------------------------------------------------------------------

INT_VARS = ("x", "y", "z")
ARRAYS = ("A", "B")
BINOPS = ("+", "-", "*", "&", "|", "^")


@st.composite
def expression(draw, depth=0, loop_vars=()):
    choices = ["literal", "var"]
    if loop_vars:
        choices.append("loop_var")
    if depth < 3:
        choices.extend(["binop", "array", "shift", "call"])
    kind = draw(st.sampled_from(choices))
    if kind == "literal":
        return str(draw(st.integers(min_value=-64, max_value=64)))
    if kind == "var":
        return draw(st.sampled_from(INT_VARS))
    if kind == "loop_var":
        return draw(st.sampled_from(list(loop_vars)))
    if kind == "binop":
        op = draw(st.sampled_from(BINOPS))
        lhs = draw(expression(depth=depth + 1, loop_vars=loop_vars))
        rhs = draw(expression(depth=depth + 1, loop_vars=loop_vars))
        return f"({lhs} {op} {rhs})"
    if kind == "shift":
        inner = draw(expression(depth=depth + 1, loop_vars=loop_vars))
        amount = draw(st.integers(min_value=0, max_value=7))
        op = draw(st.sampled_from((">>", "<<")))
        return f"(({inner}) {op} {amount})"
    if kind == "call":
        inner = draw(expression(depth=depth + 1, loop_vars=loop_vars))
        fn = draw(st.sampled_from(("mix", "iabs", "helper")))
        return f"{fn}({inner})"
    array = draw(st.sampled_from(ARRAYS))
    index = draw(expression(depth=depth + 1, loop_vars=loop_vars))
    return f"{array}[({index}) & 63]"


@st.composite
def condition(draw, loop_vars=()):
    lhs = draw(expression(depth=1, loop_vars=loop_vars))
    rhs = draw(expression(depth=1, loop_vars=loop_vars))
    op = draw(st.sampled_from(("<", "<=", ">", ">=", "==", "!=")))
    return f"({lhs}) {op} ({rhs})"


@st.composite
def statement(draw, depth=0, loop_depth=0, loop_vars=(), innermost_loop=None):
    choices = ["assign_var", "assign_array", "assign_float"]
    if depth < 2:
        choices.append("if")
    if loop_depth < 2 and depth < 2:
        choices.extend(["for", "while"])
    if innermost_loop is not None:
        choices.append("break")
    if innermost_loop == "for":
        # `continue` inside the generated while would skip the counter
        # increment and never terminate; for-loops step in the latch.
        choices.append("continue")
    kind = draw(st.sampled_from(choices))
    indent = "  " * (depth + 1)
    if kind == "break":
        return f"{indent}if ({draw(condition(loop_vars=loop_vars))}) {{ break; }}"
    if kind == "continue":
        return f"{indent}if ({draw(condition(loop_vars=loop_vars))}) {{ continue; }}"
    if kind == "assign_var":
        var = draw(st.sampled_from(INT_VARS))
        value = draw(expression(loop_vars=loop_vars))
        return f"{indent}{var} = {value};"
    if kind == "assign_float":
        value = draw(expression(loop_vars=loop_vars))
        op = draw(st.sampled_from(("+", "*", "-")))
        return f"{indent}f = f {op} (float)({value});"
    if kind == "assign_array":
        array = draw(st.sampled_from(ARRAYS))
        index = draw(expression(depth=2, loop_vars=loop_vars))
        value = draw(expression(loop_vars=loop_vars))
        return f"{indent}{array}[({index}) & 63] = {value};"
    if kind == "if":
        cond = draw(condition(loop_vars=loop_vars))
        then_body = draw(st.lists(
            statement(depth=depth + 1, loop_depth=loop_depth,
                      loop_vars=loop_vars, innermost_loop=innermost_loop),
            min_size=1, max_size=2))
        if draw(st.booleans()):
            else_body = draw(st.lists(
                statement(depth=depth + 1, loop_depth=loop_depth,
                          loop_vars=loop_vars, innermost_loop=innermost_loop),
                min_size=1, max_size=2))
            return (f"{indent}if ({cond}) {{\n" + "\n".join(then_body)
                    + f"\n{indent}}} else {{\n" + "\n".join(else_body)
                    + f"\n{indent}}}")
        return (f"{indent}if ({cond}) {{\n" + "\n".join(then_body)
                + f"\n{indent}}}")
    loop_var = f"i{loop_depth}"
    trips = draw(st.integers(min_value=1, max_value=6))
    body = draw(st.lists(
        statement(depth=depth + 1, loop_depth=loop_depth + 1,
                  loop_vars=tuple(loop_vars) + (loop_var,),
                  innermost_loop=kind),
        min_size=1, max_size=3))
    if kind == "while":
        # Bounded while: the fresh counter guarantees termination even when
        # the drawn condition stays true.
        return (f"{indent}{loop_var} = 0;\n"
                f"{indent}while ({loop_var} < {trips}) {{\n"
                + "\n".join(body)
                + f"\n{indent}  {loop_var} = {loop_var} + 1;\n{indent}}}")
    return (f"{indent}for ({loop_var} = 0; {loop_var} < {trips}; "
            f"{loop_var} = {loop_var} + 1) {{\n"
            + "\n".join(body) + f"\n{indent}}}")


@st.composite
def minic_program(draw):
    statements = draw(st.lists(statement(), min_size=1, max_size=5))
    body = "\n".join(statements)
    return f"""
int A[64]; int B[64];
int mix(int v) {{ return (v * 31 + 7) & 1023; }}
int helper(int v) {{
  if (v > 100) {{ return v - 100; }}
  return v + 3;
}}
int main() {{
  int x = 1; int y = 2; int z = 3;
  float f = 0.5;
  int i0; int i1; int i2;
  int k;
  for (k = 0; k < 64; k = k + 1) {{ A[k] = k * 17; B[k] = 64 - k; }}
{body}
  int chk = x ^ y ^ z;
  for (k = 0; k < 64; k = k + 1) {{ chk = chk ^ A[k] ^ (B[k] * 3); }}
  print_int(chk);
  print_float(f);
  return chk & 65535;
}}
"""


def behaviour(module, fuel=5_000_000):
    result, machine = run_module(module, fuel=fuel)
    return result, tuple(machine.output)


@settings(max_examples=60)
@given(minic_program())
def test_optimized_equals_unoptimized(source):
    program = parse_minic(source)
    unoptimized = CodeGenerator(analyze(program)).run()
    reference = behaviour(unoptimized)

    optimized = CodeGenerator(analyze(parse_minic(source))).run()
    run_standard_pipeline(optimized, verify_each=True)
    assert behaviour(optimized) == reference


@settings(max_examples=30)
@given(minic_program())
def test_printer_parser_round_trip_on_random_programs(source):
    optimized = CodeGenerator(analyze(parse_minic(source))).run()
    run_standard_pipeline(optimized)
    text = print_module(optimized)
    reparsed = parse_module(text, name=optimized.name)
    verify_module(reparsed)
    assert print_module(reparsed) == text
    assert behaviour(reparsed) == behaviour(optimized)


@settings(max_examples=20)
@given(minic_program())
def test_instrumentation_neutral_on_random_programs(source):
    from repro.core import Loopapalooza

    lp = Loopapalooza(source, "diff", fuel=5_000_000)
    profile = lp.profile()
    plain_result, plain_cost, plain_output = lp.run_uninstrumented()
    assert profile.result == plain_result
    assert profile.total_cost == plain_cost
