"""Dependence-guided loop transformation tests: fission, peeling, fusion,
loop provenance, pipeline fingerprinting, and the stale-analysis guard.

Each pass case pins three things at once: the transform fired (the module's
``transform_log`` says so), the dependence verdict improved the way the
pass promises, and the program still computes the same result.
"""

import pytest

from repro.analysis.depend import (
    VERDICT_DOALL,
    VERDICT_LCD,
    VERDICT_UNKNOWN,
    DependenceAnalysis,
    analyze_module,
    canonical_loop_shape,
    module_memory_summaries,
)
from repro.analysis.invalidation import invalidate_module_analyses
from repro.analysis.loop_info import (
    ORIGIN_DISTR,
    ORIGIN_FUSED,
    ORIGIN_MAIN,
    ORIGIN_PEEL,
    ORIGIN_REMAINDER,
    LoopInfo,
    loop_origin_of,
    loop_origin_root,
    record_loop_origin,
)
from repro.errors import StaleAnalysisError
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import run_module
from repro.passes import (
    PIPELINE_VERSION,
    pipeline_fingerprint,
    run_loop_fusion_module,
    run_transform_pipeline,
    transform_enabled,
)

FISSION_SRC = """
int A[64]; int B[64]; int S[64];
int main() {
  for (int i = 1; i < 64; i = i + 1) {
    A[i] = B[i] + 1;
    S[i] = S[i-1] + B[i];
  }
  return A[5] + S[63];
}
"""

FRONT_PEEL_SRC = """
int A[64];
int main() {
  A[0] = 7;
  for (int i = 0; i < 64; i = i + 1) {
    A[i] = A[0] + 1;
  }
  return A[9];
}
"""

BACK_PEEL_SRC = """
int A[64];
int main() {
  A[63] = 5;
  for (int i = 0; i < 64; i = i + 1) {
    A[i] = A[63] + 1;
  }
  return A[9] + A[63];
}
"""

FUSION_SRC = """
int A[64]; int B[64];
int main() {
  for (int i = 0; i < 64; i = i + 1) { A[i] = i; }
  for (int j = 0; j < 64; j = j + 1) { B[j] = j + j; }
  return A[3] + B[4];
}
"""


def _result(module):
    rc, _ = run_module(module)
    return rc


def _verdicts(module):
    return {k: d.verdict for k, d in analyze_module(module).items()}


def _compile_pair(source):
    return (compile_source(source, transform=False),
            compile_source(source, transform=True))


class TestFission:
    def test_splits_serial_scc_from_parallel_remainder(self):
        plain, transformed = _compile_pair(FISSION_SRC)
        log = transformed.transform_log
        assert [entry["pass"] for entry in log] == ["fission"]
        assert _verdicts(plain) == {"main.for.cond1": VERDICT_LCD}
        after = _verdicts(transformed)
        # The distributed clone carries the parallel slice and proves
        # DOALL; the host keeps the serial recurrence.
        assert after["main.for.cond1.fiss1g1"] == VERDICT_DOALL
        assert after["main.for.cond1"] == VERDICT_LCD
        assert _result(plain) == _result(transformed)

    def test_provenance_tags_and_root(self):
        _, transformed = _compile_pair(FISSION_SRC)
        clone = loop_origin_of(transformed, "main.for.cond1.fiss1g1")
        assert clone.tag == ORIGIN_DISTR
        assert clone.source == "main.for.cond1"
        assert loop_origin_root(
            transformed, "main.for.cond1.fiss1g1") == "main.for.cond1"

    def test_statement_graph_isolates_the_recurrence(self):
        module = compile_source(FISSION_SRC, transform=False)
        function = module.functions["main"]
        loop_info = LoopInfo(function)
        (loop,) = loop_info.all_loops()
        shape, reason = canonical_loop_shape(loop, loop_info.cfg)
        assert shape is not None, reason
        dep = DependenceAnalysis(
            function, loop_info, summaries=module_memory_summaries(module))
        graph = dep.statement_graph(loop)
        assert graph.failure is None
        groups = graph.fission_groups()
        assert len(groups) >= 2
        serial_flags = [serial for _, serial in groups]
        assert serial_flags.count(True) == 1
        # The S[i] = S[i-1] recurrence (and only it) is in the serial SCC.
        assert any(len(indices) >= 2 for indices, serial in groups if serial)


class TestPeeling:
    def test_front_peel_unlocks_first_iteration_conflict(self):
        plain, transformed = _compile_pair(FRONT_PEEL_SRC)
        (entry,) = transformed.transform_log
        assert (entry["pass"], entry["kind"]) == ("peel", "front")
        assert _verdicts(plain)["main.for.cond1"] == VERDICT_UNKNOWN
        assert _verdicts(transformed)["main.for.cond1"] == VERDICT_DOALL
        assert loop_origin_of(
            transformed, "main.for.cond1").tag == ORIGIN_PEEL
        assert _result(plain) == _result(transformed)

    def test_back_peel_unlocks_last_iteration_conflict(self):
        plain, transformed = _compile_pair(BACK_PEEL_SRC)
        (entry,) = transformed.transform_log
        assert (entry["pass"], entry["kind"]) == ("peel", "back")
        assert _verdicts(plain)["main.for.cond1"] == VERDICT_UNKNOWN
        assert _verdicts(transformed)["main.for.cond1"] == VERDICT_DOALL
        assert loop_origin_of(
            transformed, "main.for.cond1").tag == ORIGIN_REMAINDER
        assert _result(plain) == _result(transformed)


class TestFusion:
    def test_adjacent_lockstep_loops_fuse(self):
        plain, transformed = _compile_pair(FUSION_SRC)
        (entry,) = transformed.transform_log
        assert entry["pass"] == "fusion"
        assert entry["absorbed"] == "main.for.cond5"
        assert entry["trip"] == 64
        after = _verdicts(transformed)
        # One loop remains; the absorbed header is gone from the module.
        assert "main.for.cond5" not in after
        assert after["main.for.cond1"] == VERDICT_DOALL
        assert loop_origin_of(
            transformed, "main.for.cond1").tag == ORIGIN_FUSED
        assert _result(plain) == _result(transformed)

    def test_fusion_preventing_dependence_blocks(self):
        # The second loop reads what the first wrote one element ahead:
        # fusing would read the value before it is written.
        source = """
        int A[64]; int B[64];
        int main() {
          for (int i = 0; i < 63; i = i + 1) { A[i] = i; }
          for (int j = 0; j < 63; j = j + 1) { B[j] = A[j + 1]; }
          return B[4];
        }
        """
        plain, transformed = _compile_pair(source)
        assert not [e for e in transformed.transform_log
                    if e["pass"] == "fusion"]
        assert _result(plain) == _result(transformed)


class TestProvenanceModel:
    def test_default_origin_is_main(self):
        module = compile_source(FUSION_SRC, transform=False)
        origin = loop_origin_of(module, "main.for.cond1")
        assert origin.tag == ORIGIN_MAIN
        assert origin.source == "main.for.cond1"

    def test_root_follows_chains(self):
        module = compile_source(FUSION_SRC, transform=False)
        record_loop_origin(module, "L.p", ORIGIN_PEEL, "L")
        record_loop_origin(module, "L.p.d", ORIGIN_DISTR, "L.p")
        assert loop_origin_root(module, "L.p.d") == "L"
        assert loop_origin_root(module, "unrelated") == "unrelated"

    def test_rejects_unknown_tag(self):
        module = compile_source(FUSION_SRC, transform=False)
        with pytest.raises(ValueError):
            record_loop_origin(module, "L", "SPLIT", "L")


class TestPipelineFingerprint:
    def test_fingerprint_encodes_version_and_transform(self):
        assert pipeline_fingerprint(False) != pipeline_fingerprint(True)
        assert f"pipe{PIPELINE_VERSION}" in pipeline_fingerprint(False)

    def test_stamped_on_compiled_module(self):
        plain, transformed = _compile_pair(FUSION_SRC)
        assert plain.pipeline_fingerprint == pipeline_fingerprint(False)
        assert transformed.pipeline_fingerprint == pipeline_fingerprint(True)

    def test_transform_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSFORM", raising=False)
        assert transform_enabled() is False
        monkeypatch.setenv("REPRO_TRANSFORM", "1")
        assert transform_enabled() is True
        monkeypatch.setenv("REPRO_TRANSFORM", "0")
        assert transform_enabled() is False


class TestStaleAnalysisGuard:
    def test_stale_loop_info_reuse_raises(self):
        module = compile_source(FISSION_SRC, transform=False)
        function = module.functions["main"]
        loop_info = LoopInfo(function)
        loops = loop_info.all_loops()
        assert loops
        invalidate_module_analyses(module)
        with pytest.raises(StaleAnalysisError):
            loop_info.all_loops()
        with pytest.raises(StaleAnalysisError):
            loops[0].preheader(loop_info.cfg)

    def test_stale_cfg_reuse_raises(self):
        from repro.analysis.cfg import CFG

        module = compile_source(FISSION_SRC, transform=False)
        function = module.functions["main"]
        cfg = CFG(function)
        invalidate_module_analyses(function=function)
        with pytest.raises(StaleAnalysisError):
            cfg.successors(function.blocks[0])

    def test_transform_pipeline_invalidates_snapshots(self):
        # The regression this guards: run_transform_pipeline mutates the
        # CFG, so a LoopInfo taken before it must refuse queries after.
        module = compile_source(FISSION_SRC, transform=False)
        function = module.functions["main"]
        stale = LoopInfo(function)
        run_transform_pipeline(module)
        with pytest.raises(StaleAnalysisError):
            stale.all_loops()

    def test_fresh_snapshot_after_invalidation_works(self):
        module = compile_source(FISSION_SRC, transform=False)
        function = module.functions["main"]
        invalidate_module_analyses(module)
        assert LoopInfo(function).all_loops()


class TestFusionOriginGate:
    def test_distributed_loops_not_refused_when_overridden(self):
        # ignore_origins exists for the property-based round-trip: fission
        # products are normally not fusion candidates (re-merging them
        # would undo the distribution), but the override forces it.
        module = compile_source(FISSION_SRC, transform=True)
        assert [e["pass"] for e in module.transform_log] == ["fission"]
        before = _result(module)
        changed = run_loop_fusion_module(module, ignore_origins=True)
        assert changed
        assert _result(module) == before
