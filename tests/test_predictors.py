"""Value-predictor tests (§III-C): the four schemes + perfect hybrid."""

import pytest

from repro.predictors import (
    ConfidenceHybridPredictor,
    FCMPredictor,
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
    accuracy,
    default_predictors,
    perfect_hybrid_accuracy,
    perfect_hybrid_flags,
    simulate,
)


class TestLastValue:
    def test_constant_stream(self):
        flags = simulate(LastValuePredictor(), [7] * 10)
        assert flags == [False] + [True] * 9

    def test_changing_stream(self):
        flags = simulate(LastValuePredictor(), [1, 2, 3])
        assert flags == [False, False, False]

    def test_reset(self):
        p = LastValuePredictor()
        simulate(p, [5, 5])
        p.reset()
        assert p.predict() is None


class TestStride:
    def test_arithmetic_sequence(self):
        values = list(range(0, 50, 3))
        flags = simulate(StridePredictor(), values)
        # needs two observations to learn the stride
        assert flags[:2] == [False, False]
        assert flags[2:] == [True] * (len(values) - 2)

    def test_float_dyadic_stride(self):
        values = [0.25 + 0.125 * i for i in range(20)]
        assert accuracy(StridePredictor(), values) > 0.8

    def test_stride_change_costs_one_miss(self):
        values = [0, 2, 4, 6, 10, 14, 18]
        flags = simulate(StridePredictor(), values)
        # one miss at the change (learns stride 4 there), then recovers
        assert flags == [False, False, True, True, False, True, True]

    def test_constant_stream_is_zero_stride(self):
        flags = simulate(StridePredictor(), [5] * 6)
        assert flags[2:] == [True] * 4


class TestTwoDelta:
    def test_ignores_one_off_disturbance(self):
        # steady +2, one +5 glitch, back to +2 from the pre-glitch value
        values = [0, 2, 4, 6, 11, 13, 15, 17]
        two_delta = simulate(TwoDeltaStridePredictor(), values)
        plain = simulate(StridePredictor(), values)
        # plain stride mispredicts twice around the glitch (learns 5);
        # 2-delta keeps stride 2 and mispredicts only the glitch itself.
        assert sum(two_delta) > sum(plain)
        assert two_delta[4] is False       # the glitch itself misses
        assert two_delta[5] is True        # hysteresis kept stride 2

    def test_steady_sequence(self):
        flags = simulate(TwoDeltaStridePredictor(), list(range(0, 40, 4)))
        assert all(flags[3:])


class TestFCM:
    def test_periodic_pattern(self):
        values = [1, 2, 3] * 10
        flags = simulate(FCMPredictor(order=2), values)
        assert all(flags[5:]), "period-3 pattern must be learned"

    def test_alternating_pattern_beats_stride(self):
        values = [10, 20] * 10
        assert accuracy(FCMPredictor(order=2), values) > accuracy(
            StridePredictor(), values
        )

    def test_random_stream_fails(self):
        from repro.interp.intrinsics import _hash32

        values = [_hash32(i) for i in range(200)]
        assert accuracy(FCMPredictor(order=2), values) < 0.05

    def test_table_bound(self):
        predictor = FCMPredictor(order=1, max_table=4)
        simulate(predictor, list(range(100)))
        assert len(predictor._table) <= 4


class TestPerfectHybrid:
    def test_any_correct_counts(self):
        # alternating pattern: FCM catches it, stride family does not.
        values = [10, 20] * 8
        flags = perfect_hybrid_flags(values)
        assert sum(flags) >= sum(simulate(FCMPredictor(order=2), values))

    def test_accuracy_dominates_components(self):
        sequences = [
            list(range(30)),
            [5] * 30,
            [1, 2, 3] * 10,
            [i * i for i in range(30)],
        ]
        for values in sequences:
            hybrid = perfect_hybrid_accuracy(values)
            for component in default_predictors():
                assert hybrid >= accuracy(component, values) - 1e-12

    def test_empty_sequence(self):
        assert perfect_hybrid_flags([]) == []
        assert perfect_hybrid_accuracy([]) == 0.0

    def test_unpredictable_hash_stream_mostly_missed(self):
        from repro.interp.intrinsics import _hash32

        values = [(_hash32(i) >> 7) & 1023 for i in range(300)]
        assert perfect_hybrid_accuracy(values) < 0.1


class TestConfidenceHybrid:
    def test_tracks_best_component_on_strides(self):
        values = list(range(0, 120, 3))
        hybrid = ConfidenceHybridPredictor()
        assert accuracy(hybrid, values) > 0.85

    def test_warms_up_before_predicting(self):
        hybrid = ConfidenceHybridPredictor(threshold=2)
        assert hybrid.predict() is None
        hybrid.train(5)
        assert hybrid.predict() is None  # confidence not yet built

    def test_never_exceeds_perfect_hybrid(self):
        for values in (list(range(20)), [3, 1, 4, 1, 5, 9, 2, 6] * 4, [7] * 15):
            realistic = accuracy(ConfidenceHybridPredictor(), values)
            perfect = perfect_hybrid_accuracy(values)
            assert realistic <= perfect + 1e-12

    def test_reset_clears_confidence(self):
        hybrid = ConfidenceHybridPredictor()
        simulate(hybrid, list(range(10)))
        hybrid.reset()
        assert hybrid.confidence == [0] * len(hybrid.components)
        assert hybrid.predict() is None
