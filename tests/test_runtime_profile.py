"""Profiling-runtime tests: invocation tree, conflicts, privatization, LCDs."""

from repro.core import Loopapalooza


def profile_of(source, name="t"):
    lp = Loopapalooza(source, name)
    return lp, lp.profile()


class TestInvocationTree:
    def test_single_loop_structure(self, doall_kernel):
        profile = doall_kernel.profile()
        top = profile.top_level
        assert len(top) == 1
        inv = top[0]
        # N body executions record N+1 iteration starts: the final header
        # check (the failing exit test) is its own cheap pseudo-iteration.
        assert inv.num_iterations == 121
        assert inv.exited
        assert inv.parent is None
        assert inv.serial_cost > 0
        assert len(inv.iteration_costs()) == 121
        assert sum(inv.iteration_costs()) == inv.serial_cost

    def test_nested_invocations(self):
        lp, profile = profile_of(
            """
            int A[64];
            int main() {
              int i; int j;
              for (i = 0; i < 8; i = i + 1) {
                for (j = 0; j < 8; j = j + 1) { A[i*8+j] = i + j; }
              }
              return 0;
            }
            """
        )
        outer = profile.top_level[0]
        assert outer.num_iterations == 9  # 8 trips + exit check
        assert len(outer.children) == 8
        parent_iters = [child.parent_iter for child in outer.children]
        assert parent_iters == list(range(8))
        for child in outer.children:
            assert child.num_iterations == 9
            assert child.parent is outer

    def test_loops_in_callees_nest_dynamically(self):
        lp, profile = profile_of(
            """
            int A[40];
            void work(int base) {
              int j;
              for (j = 0; j < 10; j = j + 1) { A[base + j] = j; }
            }
            int main() {
              int i;
              for (i = 0; i < 4; i = i + 1) { work(i * 10); }
              return 0;
            }
            """
        )
        outer = profile.top_level[0]
        assert len(outer.children) == 4
        assert all(child.loop_id.startswith("work.") for child in outer.children)

    def test_early_return_closes_invocations(self):
        lp, profile = profile_of(
            """
            int find(int needle) {
              int i;
              for (i = 0; i < 100; i = i + 1) {
                if (i == needle) { return i; }
              }
              return -1;
            }
            int main() { return find(5); }
            """
        )
        inv = profile.top_level[0]
        assert inv.exited
        assert inv.num_iterations == 6
        assert inv.end_ts >= inv.iter_starts[-1]

    def test_break_exit_recorded(self):
        lp, profile = profile_of(
            """
            int A[50];
            int main() {
              int i;
              for (i = 0; i < 50; i = i + 1) {
                if (i == 10) { break; }
                A[i] = i;
              }
              return A[3];
            }
            """
        )
        inv = profile.top_level[0]
        assert inv.exited
        assert inv.num_iterations == 11

    def test_total_cost_covers_loops(self, reduction_kernel):
        profile = reduction_kernel.profile()
        loop_cost = sum(inv.serial_cost for inv in profile.top_level)
        assert 0 < loop_cost <= profile.total_cost


class TestConflicts:
    def test_doall_loop_has_no_conflicts(self, doall_kernel):
        inv = doall_kernel.profile().top_level[0]
        assert inv.conflict_count == 0
        assert inv.conflict_pairs == {}

    def test_chain_conflicts_every_iteration(self, chain_kernel):
        inv = chain_kernel.profile().top_level[0]
        assert inv.num_iterations == 120  # 119 trips + exit check
        # every iteration i>0 consumes iteration i-1's store
        assert set(inv.conflict_pairs) == set(range(1, 119))
        assert all(inv.conflict_pairs[c] == c - 1 for c in inv.conflict_pairs)
        assert inv.max_mem_skew > 0

    def test_long_distance_conflict_pairs(self):
        lp, profile = profile_of(
            """
            int A[100];
            int main() {
              int i;
              for (i = 0; i < 100; i = i + 1) {
                if (i >= 50) { A[i] = A[i - 50] + 1; }
                if (i < 50) { A[i] = i; }
              }
              return A[99];
            }
            """
        )
        inv = profile.top_level[0]
        assert set(inv.conflict_pairs) == set(range(50, 100))
        assert all(inv.conflict_pairs[c] == c - 50 for c in inv.conflict_pairs)

    def test_intra_iteration_rmw_is_not_a_conflict(self):
        lp, profile = profile_of(
            """
            int A[32];
            int main() {
              int i;
              for (i = 0; i < 32; i = i + 1) {
                A[i] = 1;
                A[i] = A[i] + 1;   // read of same-iteration write
              }
              return A[5];
            }
            """
        )
        assert profile.top_level[0].conflict_count == 0

    def test_reads_of_preloop_data_are_not_conflicts(self):
        lp, profile = profile_of(
            """
            int A[32]; int B[32];
            int main() {
              int i;
              for (i = 0; i < 32; i = i + 1) { A[i] = i; }
              for (i = 1; i < 32; i = i + 1) { B[i] = A[i - 1]; }
              return B[5];
            }
            """
        )
        second = profile.top_level[1]
        assert second.conflict_count == 0

    def test_skew_reflects_producer_consumer_positions(self):
        # Early producer, late consumer -> skew ~0; the reverse -> large.
        lp_early, profile_early = profile_of(
            """
            int A[64];
            int main() {
              int i;
              A[0] = 1;
              for (i = 1; i < 64; i = i + 1) {
                A[i] = A[i-1] + 1;          // producer early in iteration
                int k; int s = 0;
                for (k = 0; k < 8; k = k + 1) { s = s + k * i; }
                if (s < 0) { A[i] = 0; }
              }
              return A[63];
            }
            """,
            "early",
        )
        outer_early = profile_early.top_level[0]
        iter_len = outer_early.serial_cost / outer_early.num_iterations
        assert outer_early.max_mem_skew < iter_len * 0.5


class TestCactusStackPrivatization:
    def test_callee_frame_is_iteration_private(self):
        """Calls in a loop write their own frames; the paper's cactus-stack
        rule says those writes are not loop-carried dependencies."""
        lp, profile = profile_of(
            """
            int helper(int x) {
              int tmp[4];
              tmp[0] = x;
              tmp[1] = tmp[0] * 2;
              return tmp[1];
            }
            int OUT[32];
            int main() {
              int i;
              for (i = 0; i < 32; i = i + 1) { OUT[i] = helper(i); }
              return OUT[3];
            }
            """
        )
        inv = profile.top_level[0]
        assert inv.conflict_count == 0

    def test_loop_body_alloca_is_private(self):
        lp, profile = profile_of(
            """
            int OUT[16];
            int main() {
              int i;
              for (i = 0; i < 16; i = i + 1) {
                int scratch[4];
                scratch[0] = i;
                scratch[1] = scratch[0] + 1;
                OUT[i] = scratch[1];
              }
              return OUT[3];
            }
            """
        )
        assert profile.top_level[0].conflict_count == 0

    def test_outer_frame_array_still_conflicts(self):
        lp, profile = profile_of(
            """
            int main() {
              int buf[8];
              int i;
              buf[0] = 1;
              for (i = 1; i < 8; i = i + 1) { buf[i] = buf[i-1] * 2; }
              return buf[7];
            }
            """
        )
        inv = profile.top_level[0]
        assert inv.conflict_count > 0  # buf belongs to the pre-loop frame


class TestRegisterLCDRecording:
    def test_noncomputable_lcd_values_recorded(self):
        lp, profile = profile_of(
            """
            int A[64];
            int main() {
              int pos = 0;
              int s = 0;
              while (pos < 60) {
                s = s + A[pos];
                pos = pos + 1 + (A[pos] & 1);
              }
              return s;
            }
            """
        )
        inv = profile.top_level[0]
        assert inv.lcd_values, "unpredictable cursor should be tracked"
        pos_key = [k for k in inv.lcd_values if ":pos" in k]
        assert pos_key
        values = inv.lcd_values[pos_key[0]]
        assert len(values) == inv.num_iterations - 1
        assert values == sorted(values)  # cursor increases

    def test_computable_iv_not_recorded(self, doall_kernel):
        inv = doall_kernel.profile().top_level[0]
        assert all(":i" not in key for key in inv.lcd_values)

    def test_def_and_use_offsets_recorded(self):
        lp, profile = profile_of(
            """
            int OUT[40];
            int main() {
              int x = 1;
              int i;
              for (i = 0; i < 40; i = i + 1) {
                OUT[i] = x;                     // use of x early
                x = (x * 5 + 1) & 1023;         // def of next x
              }
              return OUT[39];
            }
            """
        )
        inv = profile.top_level[0]
        x_key = [k for k in inv.lcd_def_offsets if ":x" in k][0]
        defs = inv.lcd_def_offsets[x_key]
        uses = inv.lcd_use_offsets[x_key]
        assert len(defs) == inv.num_iterations - 1
        assert all(d >= 0 for d in defs)
        assert any(u is not None for u in uses)
