"""Scalar evolution tests: the computable/non-computable classifier."""

import pytest

from repro.analysis import LoopInfo, ScalarEvolution
from repro.analysis.scev import (
    SCEVAddRec,
    SCEVConstant,
    SCEVUnknown,
    scev_add,
    scev_mul,
    scev_sub,
)
from repro.frontend import compile_source
from repro.interp.interpreter import run_module


def scev_for(source, function="main"):
    module = compile_source(source)
    f = module.get_function(function)
    info = LoopInfo(f)
    return module, f, info, ScalarEvolution(f, info)


def header_phis(info, depth=1):
    loop = [l for l in info.all_loops() if l.depth == depth][0]
    return loop, {phi.name: phi for phi in loop.header.phis()}


class TestFolding:
    def test_constant_folding(self):
        assert scev_add(SCEVConstant(2), SCEVConstant(3)) == SCEVConstant(5)
        assert scev_mul(SCEVConstant(2), SCEVConstant(3)) == SCEVConstant(6)
        assert scev_sub(SCEVConstant(2), SCEVConstant(3)) == SCEVConstant(-1)

    def test_add_identity(self):
        x = SCEVConstant(7)
        assert scev_add(x, SCEVConstant(0)) == x

    def test_mul_by_zero_and_one(self):
        x = SCEVConstant(9)
        assert scev_mul(x, SCEVConstant(0)) == SCEVConstant(0)
        assert scev_mul(SCEVConstant(1), x) == x


class TestClassification:
    def test_basic_iv(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              int i;
              for (i = 0; i < 64; i = i + 1) { A[i] = i; }
              return 0;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert isinstance(expr, SCEVAddRec)
        assert expr.start == SCEVConstant(0)
        assert expr.step == SCEVConstant(1)
        assert scev.is_computable_phi(phis["i"])

    def test_strided_and_offset_iv(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              int i;
              for (i = 5; i < 60; i = i + 3) { A[i] = i; }
              return 0;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert expr.start == SCEVConstant(5)
        assert expr.step == SCEVConstant(3)

    def test_downward_iv(self):
        module, f, info, scev = scev_for(
            """
            int main() {
              int i;
              int s = 0;
              for (i = 50; i > 0; i = i - 2) { s = s ^ i; }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        assert scev.get(phis["i"]).step == SCEVConstant(-2)

    def test_mutual_induction_variable(self):
        module, f, info, scev = scev_for(
            """
            int A[4096];
            int main() {
              int i; int tri = 0;
              for (i = 0; i < 40; i = i + 1) {
                tri = tri + i;
                A[tri & 4095] = i;
              }
              return 0;
            }
            """
        )
        loop, phis = header_phis(info)
        tri = scev.get(phis["tri"])
        assert isinstance(tri, SCEVAddRec)
        assert isinstance(tri.step, SCEVAddRec), "MIV step should be an addrec"
        assert scev.is_computable_phi(phis["tri"])
        assert not tri.is_affine()

    def test_geometric_not_computable(self):
        module, f, info, scev = scev_for(
            """
            int main() {
              int x = 1;
              int i;
              int s = 0;
              for (i = 0; i < 20; i = i + 1) { x = x * 2; s = s | x; }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        assert not scev.is_computable_phi(phis["x"])
        assert isinstance(scev.get(phis["x"]), SCEVUnknown)

    def test_data_dependent_not_computable(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              int pos = 0;
              int s = 0;
              while (pos < 60) { s = s + A[pos]; pos = pos + 1 + (A[pos] & 3); }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        assert not scev.is_computable_phi(phis["pos"])

    def test_loop_invariant_step_is_computable(self):
        module, f, info, scev = scev_for(
            """
            int A[4096];
            int step_g = 3;
            int main() {
              int i;
              int st = step_g;
              for (i = 0; i < 40; i = i + st) { A[i & 4095] = i; }
              return 0;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert isinstance(expr, SCEVAddRec)
        assert scev.is_computable_phi(phis["i"])

    def test_float_recurrence_is_unknown(self):
        module, f, info, scev = scev_for(
            """
            float S = 0.0;
            int main() {
              int i;
              float x = 0.0;
              float s = 0.0;
              for (i = 0; i < 10; i = i + 1) { x = x + 0.5; s = s + x; }
              S = s;
              return 0;
            }
            """
        )
        loop, phis = header_phis(info)
        assert not scev.is_computable_phi(phis["x"])

    def test_pointerish_gep_addrec(self):
        # A[i] address should fold to base + i (an addrec through GEP).
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              int i;
              for (i = 0; i < 64; i = i + 1) { A[i] = 1; }
              return 0;
            }
            """
        )
        loop, _ = header_phis(info)
        from repro.ir.instructions import GEP

        geps = [ins for b in loop.blocks for ins in b.instructions
                if isinstance(ins, GEP)]
        assert geps
        expr = scev.get(geps[0])
        assert isinstance(expr, SCEVAddRec)
        assert expr.step == SCEVConstant(1)


class TestEvaluateAt:
    def test_affine_closed_form(self):
        module, f, info, scev = scev_for(
            """
            int main() {
              int i;
              int s = 0;
              for (i = 7; i < 100; i = i + 4) { s = s ^ i; }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert [expr.evaluate_at(n) for n in range(4)] == [7, 11, 15, 19]

    def test_miv_closed_form_matches_execution(self):
        # tri_n = 0 + 0 + 1 + ... + (n-1) = n(n-1)/2
        source = """
        int OUT[40];
        int main() {
          int i; int tri = 0;
          for (i = 0; i < 40; i = i + 1) {
            OUT[i] = tri;
            tri = tri + i;
          }
          return 0;
        }
        """
        module, f, info, scev = scev_for(source)
        loop, phis = header_phis(info)
        tri = scev.get(phis["tri"])
        predicted = [tri.evaluate_at(n) for n in range(40)]
        assert predicted == [n * (n - 1) // 2 for n in range(40)]
        # cross-check against actual interpretation
        result, machine = run_module(compile_source(source))
        base = machine.global_bases["OUT"]
        actual = [machine.space.load(base + n) for n in range(40)]
        assert actual == predicted

    def test_evaluate_requires_constants(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main(){
              int i;
              int k = A[0];
              int j = 0;
              for (i = 0; i < 10; i = i + 1) { j = j + k; A[i] = j; }
              return 0;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["j"])
        assert isinstance(expr, SCEVAddRec)
        with pytest.raises(ValueError):
            expr.evaluate_at(3)


class TestTripCount:
    @pytest.mark.parametrize("cond,expected", [
        ("i < 10", 10),
        ("i < 11", 11),
        ("i <= 10", 11),
    ])
    def test_simple_counts(self, cond, expected):
        module, f, info, scev = scev_for(
            f"""
            int main() {{
              int i; int s = 0;
              for (i = 0; {cond}; i = i + 1) {{ s = s + 1; }}
              return s;
            }}
            """
        )
        loop = info.all_loops()[0]
        assert scev.trip_count(loop) == expected
        result, _ = run_module(module)
        assert result == expected

    def test_strided_count(self):
        module, f, info, scev = scev_for(
            """
            int main() {
              int i; int s = 0;
              for (i = 0; i < 10; i = i + 3) { s = s + 1; }
              return s;
            }
            """
        )
        loop = info.all_loops()[0]
        assert scev.trip_count(loop) == 4

    def test_readonly_global_bound_folds_to_constant(self):
        # N is never stored and never escapes, so its loads fold to the
        # initializer and the trip count becomes constant.
        module, f, info, scev = scev_for(
            """
            int N = 10;
            int main() {
              int i; int s = 0;
              int n = N;
              for (i = 0; i < n; i = i + 1) { s = s + 1; }
              return s;
            }
            """
        )
        loop = info.all_loops()[0]
        assert scev.trip_count(loop) == 10

    def test_written_global_bound_gives_none(self):
        # A store anywhere in the module disqualifies the fold.
        module, f, info, scev = scev_for(
            """
            int N = 10;
            int main() {
              int i; int s = 0;
              int n = N;
              N = n + 1;
              for (i = 0; i < n; i = i + 1) { s = s + 1; }
              return s;
            }
            """
        )
        loop = info.all_loops()[0]
        assert scev.trip_count(loop) is None


class TestEdgeCaseRecurrences:
    """Shapes the dependence engine leans on: descending IVs, non-unit
    steps, and multi-loop (MIV) pointer expressions."""

    def test_descending_iv_forms_negative_step_addrec(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              int s = 0;
              for (int i = 62; i >= 0; i = i - 1) { s = s + A[i]; }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert isinstance(expr, SCEVAddRec)
        assert expr.start == SCEVConstant(62)
        assert expr.step == SCEVConstant(-1)
        # The trip-count machinery only handles ascending slt/sle bounds;
        # descending loops must answer None, never a wrong count.
        assert scev.trip_count(loop) is None

    def test_non_unit_step_addrec_and_trip(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              int s = 0;
              for (int i = 1; i < 60; i = i + 3) { s = s + A[i]; }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert isinstance(expr, SCEVAddRec)
        assert expr.start == SCEVConstant(1)
        assert expr.step == SCEVConstant(3)
        assert scev.trip_count(loop) == 20

    def test_huge_step_stays_algebraic(self):
        # SCEV itself is width-agnostic: a step near 2^27 still folds into
        # an exact addrec (the *dependence* layer is what refuses to draw
        # conclusions from values that may wrap i32 at run time).
        module, f, info, scev = scev_for(
            """
            int main() {
              int s = 0;
              for (int i = 0; i < 64; i = i + 1) { s = s + i * 134217728; }
              return s;
            }
            """
        )
        loop, phis = header_phis(info)
        expr = scev.get(phis["i"])
        assert isinstance(expr, SCEVAddRec)
        assert expr.step == SCEVConstant(1)

    def test_nested_pointer_scev_mixes_both_loops(self):
        # &A[i*8+j] must mention the outer addrec (step 8) and the inner
        # addrec (step 1) — the MIV form the dependence tests linearize.
        from repro.ir.instructions import Store

        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 8; i = i + 1)
                for (int j = 0; j < 8; j = j + 1)
                  A[i*8+j] = i;
              return A[0];
            }
            """
        )
        stores = [ins for block in f.blocks for ins in block.instructions
                  if isinstance(ins, Store)]
        assert len(stores) == 1
        expr = scev.get(stores[0].pointer)
        text = repr(expr)
        outer = [l for l in info.all_loops() if l.depth == 1][0]
        inner = [l for l in info.all_loops() if l.depth == 2][0]
        assert outer.loop_id in text and inner.loop_id in text
        assert ",+,8}" in text and ",+,1}" in text

    def test_inner_trip_count_known_per_invocation(self):
        module, f, info, scev = scev_for(
            """
            int A[64];
            int main() {
              for (int i = 0; i < 8; i = i + 1)
                for (int j = 0; j < 8; j = j + 1)
                  A[i*8+j] = i;
              return A[0];
            }
            """
        )
        for loop in info.all_loops():
            assert scev.trip_count(loop) == 8
