"""Unit tests for the DOALL / Partial-DOALL / HELIX cost models (§III-B)."""

from repro.runtime.cost_models import (
    PDOALL_SERIAL_THRESHOLD,
    doacross_cost,
    doall_cost,
    helix_cost,
    pdoall_cost,
    pdoall_phase_breaks,
)


class TestDOALL:
    def test_conflict_free_costs_slowest_iteration(self):
        outcome = doall_cost([10, 30, 20], has_any_conflict=False)
        assert outcome.parallel
        assert outcome.cost == 30

    def test_any_conflict_serializes(self):
        outcome = doall_cost([10, 30, 20], has_any_conflict=True)
        assert not outcome.parallel
        assert outcome.cost == 60
        assert outcome.reason == "conflict"

    def test_empty_loop(self):
        assert doall_cost([], False).cost == 0


class TestPhaseBreaks:
    def test_no_conflicts_no_breaks(self):
        assert pdoall_phase_breaks({}, 10) == []

    def test_adjacent_chain_breaks_everywhere(self):
        pairs = {i: i - 1 for i in range(1, 10)}
        assert pdoall_phase_breaks(pairs, 10) == list(range(1, 10))

    def test_committed_producer_does_not_break(self):
        # Write at iteration 2, reads at 5, 6, 7: only the first read in
        # the same phase as the producer restarts; the phase break commits
        # the write for the rest.
        pairs = {5: 2, 6: 2, 7: 2}
        assert pdoall_phase_breaks(pairs, 10) == [5]

    def test_multiple_rare_writes(self):
        # Writers at 3 and 50; consumers afterwards.
        pairs = {4: 3, 10: 3, 52: 50, 70: 50}
        assert pdoall_phase_breaks(pairs, 100) == [4, 52]

    def test_iteration_zero_ignored(self):
        assert pdoall_phase_breaks({0: -1}, 10) == []

    def test_out_of_range_consumer_ignored(self):
        assert pdoall_phase_breaks({50: 2}, 10) == []


class TestPDOALL:
    def test_no_breaks_behaves_like_doall(self):
        outcome = pdoall_cost([10, 30, 20], [])
        assert outcome.parallel and outcome.cost == 30

    def test_phases_sum_of_maxima(self):
        # iterations [10, 30, 20, 40], break at 2: phases [0,2) and [2,4).
        outcome = pdoall_cost([10, 30, 20, 40], [2])
        assert outcome.parallel
        assert outcome.cost == 30 + 40

    def test_eighty_percent_rule(self):
        costs = [10] * 10
        many_breaks = list(range(1, 10))  # 9/10 > 0.8
        outcome = pdoall_cost(costs, many_breaks)
        assert not outcome.parallel
        assert outcome.reason == "conflict-rate"
        few_breaks = list(range(1, 9))  # 8/10 == 0.8: not above threshold
        assert pdoall_cost(costs, few_breaks).parallel

    def test_no_gain_falls_back_to_serial(self):
        # two iterations, break between them: phases cost 10 + 10 = serial.
        outcome = pdoall_cost([10, 10], [1])
        assert not outcome.parallel
        assert outcome.reason == "no-gain"

    def test_threshold_constant_matches_paper(self):
        assert PDOALL_SERIAL_THRESHOLD == 0.80

    def test_conflicts_param_overrides_break_count(self):
        # Regression: the 80 % cutoff is defined on conflicting
        # *iterations*, not phase breaks. A producer at iteration 0 with
        # reads everywhere after produces a single break (the first read
        # commits the write for the rest) but every reader conflicted.
        costs = [10] * 10
        assert pdoall_cost(costs, [1], conflicts=1).parallel
        outcome = pdoall_cost(costs, [1], conflicts=9)
        assert not outcome.parallel
        assert outcome.reason == "conflict-rate"

    def test_boundary_exactly_eighty_percent_is_parallel(self):
        # conflicts / n == 0.8 exactly: the rule is "*more than* 80 %".
        costs = [1, 2, 3, 4, 50]
        outcome = pdoall_cost(costs, [4], conflicts=4)
        assert outcome.parallel

    def test_boundary_just_above_eighty_percent_is_serial(self):
        costs = [1, 2, 3, 4, 50]
        outcome = pdoall_cost(costs, [4], conflicts=5)
        assert not outcome.parallel
        assert outcome.reason == "conflict-rate"
        assert outcome.cost == sum(costs)

    def test_conflicts_default_falls_back_to_breaks(self):
        costs = [10] * 10
        assert pdoall_cost(costs, list(range(1, 9))).parallel      # 8/10
        assert not pdoall_cost(costs, list(range(1, 10))).parallel  # 9/10

    def test_exact_tie_with_serial_is_serial(self):
        # Phases cost exactly the serial sum: the model must not claim a
        # parallel win on a tie.
        outcome = pdoall_cost([10, 10], [1], serial=20.0)
        assert not outcome.parallel
        assert outcome.reason == "no-gain"
        assert outcome.cost == 20.0


class TestHELIX:
    def test_paper_formula(self):
        # HELIX_time = iter_slowest + delta_largest * num_iter
        outcome = helix_cost([10, 12, 11, 10], delta_largest=2.0)
        assert outcome.parallel
        assert outcome.cost == 12 + 2.0 * 4

    def test_zero_delta_is_doall_like(self):
        outcome = helix_cost([10, 30, 20], 0.0)
        assert outcome.cost == 30

    def test_large_delta_marks_serial(self):
        outcome = helix_cost([10, 10, 10], delta_largest=10.0)
        assert not outcome.parallel
        assert outcome.reason == "sync-bound"

    def test_delta_just_below_serial(self):
        # 3 iterations of 10; delta 6 -> 10 + 18 = 28 < 30: tiny gain kept.
        outcome = helix_cost([10, 10, 10], 6.0)
        assert outcome.parallel
        assert outcome.cost == 28

    def test_exact_tie_with_serial_is_serial(self):
        # 2 iterations of 10, delta 5 -> 10 + 5*2 = 20 == serial 20.
        # Ties break toward serial: no speculative win without real gain.
        outcome = helix_cost([10, 10], 5.0)
        assert not outcome.parallel
        assert outcome.reason == "sync-bound"
        assert outcome.cost == 20

    def test_explicit_serial_used_for_tie_break(self):
        # Caller-supplied serial participates in the comparison.
        assert helix_cost([10, 10], 5.0, serial=21.0).parallel
        assert not helix_cost([10, 10], 5.0, serial=20.0).parallel

    def test_empty_loop(self):
        outcome = helix_cost([], 3.0)
        assert outcome.parallel and outcome.cost == 0


class TestDOACROSS:
    def test_single_sync_point_uses_span(self):
        # HELIX with per-LCD sync beats single-sync DOACROSS when one LCD
        # resolves early and another is consumed late.
        iter_costs = [20] * 10
        producers = [4.0, 18.0]   # one early, one late producer
        consumers = [2.0, 16.0]   # matching consumers
        doacross = doacross_cost(iter_costs, producers, consumers)
        helix_delta = max(4.0 - 2.0, 18.0 - 16.0)  # per-LCD skew = 2
        helix = helix_cost(iter_costs, helix_delta)
        assert helix.cost < doacross.cost

    def test_no_deps_parallel(self):
        outcome = doacross_cost([5, 7], [], [])
        assert outcome.parallel and outcome.cost == 7

    def test_empty_loop(self):
        outcome = doacross_cost([], [3.0], [1.0])
        assert outcome.parallel and outcome.cost == 0

    def test_span_formula(self):
        # delta = max(producer) - min(consumer) = 18 - 2 = 16.
        outcome = doacross_cost([20] * 10, [4.0, 18.0], [2.0, 16.0])
        assert outcome.parallel
        assert outcome.cost == 20 + 16.0 * 10

    def test_negative_span_clamped_to_zero(self):
        # Producers resolve before any consumer needs them: no stall.
        outcome = doacross_cost([10, 30, 20], [2.0], [5.0])
        assert outcome.parallel
        assert outcome.cost == 30

    def test_exact_tie_with_serial_is_serial(self):
        # span delta 5 on [10, 10]: 10 + 5*2 = 20 == serial 20 -> serial.
        outcome = doacross_cost([10, 10], [6.0], [1.0])
        assert not outcome.parallel
        assert outcome.reason == "sync-bound"


class TestSerialOutcome:
    def test_sums_costs(self):
        from repro.runtime.cost_models import serial_outcome

        outcome = serial_outcome([1, 2, 3], "why")
        assert not outcome.parallel
        assert outcome.cost == 6
        assert outcome.reason == "why"

    def test_explicit_serial_skips_resum(self):
        from repro.runtime.cost_models import serial_outcome

        assert serial_outcome([1, 2, 3], "why", serial=6.0).cost == 6.0

    def test_empty(self):
        from repro.runtime.cost_models import serial_outcome

        assert serial_outcome([], "why").cost == 0.0
