"""Replay the shipped quarantine corpus as a regression suite.

Semantics (see ``src/repro/fuzz/corpus.py``): every entry under
``fuzz_corpus/`` must *pass* the four-way oracle on the current
pipeline. A freshly quarantined, still-broken case therefore fails CI
until the underlying bug is fixed; after the fix, the entry stays on as
a guard against the bug coming back. Delete an entry only when the
construct it exercises has left the language.
"""

import pathlib

import pytest

from repro.fuzz.corpus import (CORPUS_SCHEMA, QuarantineCase, corpus_root,
                               load_case, load_cases, replay_case, store_case)
from repro.fuzz.genprog import GEN_VERSION

REPO_CORPUS = pathlib.Path(__file__).resolve().parents[1] / "fuzz_corpus"


def _repo_cases():
    return load_cases(REPO_CORPUS)


def _case_params():
    cases = _repo_cases()
    if not cases:
        return [pytest.param(None, id="corpus-empty",
                             marks=pytest.mark.skip(
                                 reason="no quarantined cases shipped"))]
    return [pytest.param(case, id=case.case_id) for case in cases]


@pytest.mark.parametrize("case", _case_params())
def test_quarantined_case_stays_fixed(case):
    report = replay_case(case)
    assert report.ok, (
        f"quarantined case {case.case_id} (oracle {case.oracle}) "
        f"reproduces again: {report.describe()}\n"
        f"originally: {case.detail}"
    )


def test_repo_corpus_entries_are_well_formed():
    for case in _repo_cases():
        assert case.oracle in ("verifier", "backends", "transforms",
                               "crosscheck", "execution")
        assert case.source.strip()
        assert case.gen_version, "entries must record the grammar version"
        path = REPO_CORPUS / f"{case.case_id}.json"
        assert path.is_file(), "filename must match the case id"


# -- store/load plumbing -------------------------------------------------------


def _sample_case():
    return QuarantineCase(
        seed=7, profile="affine", oracle="backends",
        detail="jit diverges from closure (transform=off)",
        source="int main() { return 0; }",
        original_source="int main() { int i; i = 0; return i; }",
        failures=[{"oracle": "backends", "detail": "jit diverges"}],
    )


def test_store_load_round_trip(tmp_path):
    case = _sample_case()
    path = store_case(case, tmp_path)
    assert path == tmp_path / "affine-s7-backends.json"

    by_id = load_case("affine-s7-backends", root=tmp_path)
    by_filename = load_case("affine-s7-backends.json", root=tmp_path)
    by_path = load_case(str(path))
    for loaded in (by_id, by_filename, by_path):
        assert loaded.seed == 7
        assert loaded.profile == "affine"
        assert loaded.oracle == "backends"
        assert loaded.source == case.source
        assert loaded.original_source == case.original_source
        assert loaded.failures == case.failures
        assert loaded.fingerprint == case.fingerprint
        assert loaded.gen_version == GEN_VERSION

    assert [c.case_id for c in load_cases(tmp_path)] == ["affine-s7-backends"]


def test_load_tolerates_junk_files(tmp_path):
    store_case(_sample_case(), tmp_path)
    (tmp_path / "not-json.json").write_text("{ nope")
    (tmp_path / "wrong-shape.json").write_text('{"a": 1}')
    assert len(load_cases(tmp_path)) == 1
    assert load_case("not-json", root=tmp_path) is None
    assert load_case("missing-entirely", root=tmp_path) is None


def test_corpus_root_resolution(monkeypatch, tmp_path):
    assert corpus_root(tmp_path) == tmp_path
    monkeypatch.setenv("REPRO_FUZZ_CORPUS", str(tmp_path / "env"))
    assert corpus_root() == tmp_path / "env"
    assert corpus_root(tmp_path) == tmp_path  # explicit beats env
    monkeypatch.delenv("REPRO_FUZZ_CORPUS")
    assert corpus_root() == pathlib.Path("fuzz_corpus")


def test_load_cases_missing_directory_is_empty(tmp_path):
    assert load_cases(tmp_path / "does-not-exist") == []


def test_schema_version_is_stamped(tmp_path):
    path = store_case(_sample_case(), tmp_path)
    import json
    assert json.loads(path.read_text())["schema"] == CORPUS_SCHEMA
