"""CFG, dominator tree, and dominance frontier tests."""

from repro.analysis import CFG, DominatorTree
from repro.ir import I32, IRBuilder, Module
from repro.ir.values import ConstantInt

from helpers import build_counting_loop


def build_diamond():
    """entry -> (left | right) -> merge -> ret."""
    module = Module("d")
    f = module.add_function("f", I32, [])
    entry = f.append_block("entry")
    left = f.append_block("left")
    right = f.append_block("right")
    merge = f.append_block("merge")
    b = IRBuilder(entry)
    cond = b.icmp("eq", b.const_int(0), b.const_int(1))
    b.condbr(cond, left, right)
    IRBuilder(left).br(merge)
    IRBuilder(right).br(merge)
    IRBuilder(merge).ret(ConstantInt(I32, 0))
    return f, entry, left, right, merge


class TestCFG:
    def test_successors_predecessors(self):
        f, entry, left, right, merge = build_diamond()
        cfg = CFG(f)
        assert cfg.successors(entry) == [left, right]
        assert set(cfg.predecessors(merge)) == {left, right}
        assert cfg.predecessors(entry) == []

    def test_reachability(self):
        f, entry, left, right, merge = build_diamond()
        dead = f.append_block("dead")
        IRBuilder(dead).ret(ConstantInt(I32, 9))
        cfg = CFG(f)
        assert cfg.is_reachable(merge)
        assert not cfg.is_reachable(dead)
        assert dead not in cfg.reachable_blocks()

    def test_rpo_entry_first_merge_last(self):
        f, entry, left, right, merge = build_diamond()
        rpo = CFG(f).reverse_post_order()
        assert rpo[0] is entry
        assert rpo[-1] is merge
        assert rpo.index(left) < rpo.index(merge)
        assert rpo.index(right) < rpo.index(merge)

    def test_rpo_with_loop(self):
        module, f = build_counting_loop()
        rpo = CFG(f).reverse_post_order()
        names = [b.name for b in rpo]
        assert names.index("entry") < names.index("header")
        assert names.index("header") < names.index("body")

    def test_deep_cfg_no_recursion_error(self):
        module = Module("deep")
        f = module.add_function("f", I32, [])
        blocks = [f.append_block(f"b{i}") for i in range(3000)]
        for a, b in zip(blocks, blocks[1:]):
            IRBuilder(a).br(b)
        IRBuilder(blocks[-1]).ret(ConstantInt(I32, 0))
        rpo = CFG(f).reverse_post_order()
        assert len(rpo) == 3000


class TestDominators:
    def test_diamond_idoms(self):
        f, entry, left, right, merge = build_diamond()
        dom = DominatorTree(f)
        assert dom.immediate_dominator(left) is entry
        assert dom.immediate_dominator(right) is entry
        assert dom.immediate_dominator(merge) is entry
        assert dom.immediate_dominator(entry) is None

    def test_dominates_is_reflexive_and_transitive(self):
        f, entry, left, right, merge = build_diamond()
        dom = DominatorTree(f)
        assert dom.dominates(entry, entry)
        assert dom.dominates(entry, merge)
        assert not dom.dominates(left, merge)
        assert not dom.strictly_dominates(entry, entry)

    def test_loop_header_dominates_body(self):
        module, f = build_counting_loop()
        dom = DominatorTree(f)
        by_name = {b.name: b for b in f.blocks}
        assert dom.dominates(by_name["header"], by_name["body"])
        assert dom.dominates(by_name["header"], by_name["exit"])
        assert not dom.dominates(by_name["body"], by_name["header"])

    def test_children_partition(self):
        f, entry, left, right, merge = build_diamond()
        dom = DominatorTree(f)
        assert set(dom.children(entry)) == {left, right, merge}

    def test_preorder_starts_at_entry(self):
        f, entry, *_ = build_diamond()
        dom = DominatorTree(f)
        order = dom.dom_tree_preorder()
        assert order[0] is entry
        assert len(order) == 4

    def test_diamond_frontiers(self):
        f, entry, left, right, merge = build_diamond()
        dom = DominatorTree(f)
        frontiers = dom.dominance_frontiers()
        assert frontiers[left] == {merge}
        assert frontiers[right] == {merge}
        assert frontiers[entry] == set()

    def test_loop_frontier_contains_header(self):
        module, f = build_counting_loop()
        dom = DominatorTree(f)
        by_name = {b.name: b for b in f.blocks}
        frontiers = dom.dominance_frontiers()
        # the body's frontier is the header (back edge join point)
        assert by_name["header"] in frontiers[by_name["body"]]

    def test_iterated_frontier(self):
        f, entry, left, right, merge = build_diamond()
        dom = DominatorTree(f)
        idf = dom.iterated_dominance_frontier({left})
        assert idf == {merge}
        assert dom.iterated_dominance_frontier({entry}) == set()
