"""Size bounds on the three code-path caches.

A long-lived host (sweep driver, fuzz campaign, REPL) must not grow
memory or disk without bound, so every cache on the compile/execute path
is LRU-capped and counts its evictions:

* the persistent on-disk :class:`CodeCache` (``REPRO_CODE_CACHE_CAP``,
  mtime-LRU, touched on every hit),
* the in-process codegen memo (``REPRO_CODE_MEMO_CAP``), and
* the per-invocation gather-window cache in the vector runtime
  (``REPRO_VEC_WINDOW_CAP``).

All three surface in ``repro cache stats``.
"""

from __future__ import annotations

import os

from repro.frontend.codegen import compile_source
from repro.interp.codegen import codegen_memo_stats
from repro.interp.interpreter import Interpreter
from repro.interp.veccodegen import vec_runtime_stats
from repro.runtime.profile_store import (
    CODE_CACHE_CAP_DEFAULT,
    CodeCache,
    code_cache_cap,
)


def _stamp(cache, key, mtime):
    path = cache._path_for(key)
    os.utime(path, (mtime, mtime))


def test_code_cache_evicts_oldest_beyond_cap(tmp_path):
    cache = CodeCache(root=tmp_path, cap=2)
    assert cache.store("aaa", "source a")
    _stamp(cache, "aaa", 1_000_000)
    assert cache.store("bbb", "source b")
    _stamp(cache, "bbb", 1_000_100)
    assert cache.store("ccc", "source c")  # evicts aaa (oldest mtime)
    assert cache.evictions == 1
    assert cache.load("aaa") is None
    assert cache.load("bbb") == "source b"
    assert cache.load("ccc") == "source c"
    assert len(cache.entries()) == 2


def test_code_cache_hit_refreshes_lru_rank(tmp_path):
    cache = CodeCache(root=tmp_path, cap=2)
    cache.store("aaa", "source a")
    _stamp(cache, "aaa", 1_000_000)
    cache.store("bbb", "source b")
    _stamp(cache, "bbb", 1_000_100)
    assert cache.load("aaa") == "source a"  # touch: aaa is now newest
    cache.store("ccc", "source c")
    assert cache.load("aaa") == "source a"
    assert cache.load("bbb") is None  # bbb was the LRU entry
    assert cache.evictions == 1


def test_code_cache_cap_env(tmp_path, monkeypatch):
    assert code_cache_cap() == CODE_CACHE_CAP_DEFAULT
    monkeypatch.setenv("REPRO_CODE_CACHE_CAP", "5")
    assert code_cache_cap() == 5
    cache = CodeCache(root=tmp_path)  # cap=None re-reads the env live
    assert cache.cap() == 5
    assert cache.info()["cap"] == 5


def test_code_cache_info_reports_evictions(tmp_path):
    cache = CodeCache(root=tmp_path, cap=1)
    cache.store("aaa", "a")
    _stamp(cache, "aaa", 1_000_000)
    cache.store("bbb", "b")
    info = cache.info()
    assert info["cap"] == 1
    assert info["evictions"] == 1
    assert info["entries"] == 1


def _run_jit(source):
    machine = Interpreter(compile_source(source), backend="jit")
    machine.run("main")


def test_codegen_memo_respects_cap(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_MEMO_CAP", "2")
    # One switch governs the profile store and the disk code cache; kill
    # both so this exercises the in-process memo only.
    monkeypatch.setenv("REPRO_NO_PROFILE_CACHE", "1")
    before = codegen_memo_stats()["memo_evictions"]
    for salt in (101, 202, 303, 404):
        _run_jit(
            "int main() { int i; int acc; acc = 0;"
            f"  for (i = 0; i < 50; i = i + 1) {{ acc = acc + i * {salt}; }}"
            "  return acc & 255; }"
        )
    stats = codegen_memo_stats()
    assert stats["memo_cap"] == 2
    assert stats["memo_entries"] <= 2
    assert stats["memo_evictions"] > before


VEC_TWO_ARRAY_SOURCE = """
int N = 256;
int A[256];
int GAP[8];
int B[256];
int C[256];
int main() { int i;
  for (i = 0; i < N; i = i + 1) { A[i] = i * 3; B[i] = i * 5; }
  for (i = 0; i < N; i = i + 1) { C[i] = A[i] + B[i]; }
  return C[200] & 255; }
"""


def test_vec_gather_window_cap_evicts(monkeypatch):
    """With the window cache capped at one entry, a kernel gathering two
    non-adjacent arrays must evict between them (and still be correct —
    eviction only costs a re-conversion)."""
    monkeypatch.setenv("REPRO_VEC_WINDOW_CAP", "1")
    before = vec_runtime_stats()["window_evictions"]
    machine = Interpreter(compile_source(VEC_TWO_ARRAY_SOURCE),
                          backend="vec")
    result = machine.run("main")
    jit = Interpreter(compile_source(VEC_TWO_ARRAY_SOURCE), backend="jit")
    assert result == jit.run("main")
    stats = vec_runtime_stats()
    assert stats["window_cap"] == 1
    assert stats["window_evictions"] > before
