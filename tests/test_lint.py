"""Lint framework tests: registry, checkers, determinism, CLI exit codes."""

import io
from types import SimpleNamespace

import pytest

from repro.analysis.lint import (
    CATALOG,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintContext,
    checker,
    declare,
    format_diagnostics,
    run_lint,
    worst_severity,
)
from repro.cli import main
from repro.core.framework import Loopapalooza
from repro.frontend import compile_source
from repro.ir import I32, IRBuilder, Module, Phi

CLEAN = """
int A[64];
int main() {
  for (int i = 0; i < 64; i = i + 1) { A[i] = i * 3; }
  return A[7];
}
"""

UNKNOWN_DEP = """
int A[128];
int main() {
  int k = 0;
  for (int i = 0; i < 63; i = i + 1) { A[2*i] = A[i] + 1; k = k + 1; }
  return k;
}
"""


def lint_source(source, name="t", only=None):
    lp = Loopapalooza(source, name=name)
    return run_lint(LintContext.for_program(lp), only=only)


class TestRegistry:
    def test_duplicate_diagnostic_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate diagnostic"):
            declare("LP101", ERROR, "already taken")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            declare("LP999", "fatal", "bad severity")
        assert "LP999" not in CATALOG

    def test_duplicate_checker_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate checker"):
            @checker("ir-verify")
            def shadow(context, emit):
                pass

    def test_catalog_is_complete_and_prefixed(self):
        assert set(CATALOG) >= {
            "LP101", "LP102", "LP103", "LP111", "LP112", "LP113",
            "LP201", "LP202", "LP203", "LP204", "LP205",
        }
        for diagnostic_id, (severity, meaning) in CATALOG.items():
            assert diagnostic_id.startswith("LP")
            assert severity in (ERROR, WARNING, INFO)
            assert meaning

    def test_undeclared_emission_rejected(self):
        module = compile_source(CLEAN)
        context = LintContext(module, name="t")

        @checker("test-undeclared-emitter")
        def rogue(ctx, emit):
            emit("LP777", "main", -1, "never declared")

        try:
            with pytest.raises(ValueError, match="undeclared diagnostic"):
                run_lint(context, only=["test-undeclared-emitter"])
        finally:
            from repro.analysis.lint.core import _CHECKERS
            _CHECKERS[:] = [(cid, fn) for cid, fn in _CHECKERS
                            if cid != "test-undeclared-emitter"]


class TestDiagnostics:
    def test_render_and_sort_key(self):
        d = Diagnostic("LP204", INFO, "main", 2, "msg")
        assert d.render() == "LP204 info    main:2: msg"
        assert d.sort_key == ("main", 2, "LP204", "msg")
        whole = Diagnostic("LP103", ERROR, "", -1, "pipeline broke")
        assert whole.render().startswith("LP103 error   <module>:")

    def test_worst_severity(self):
        assert worst_severity([]) is None
        infos = [Diagnostic("LP204", INFO, "f", 0, "a")]
        assert worst_severity(infos) == INFO
        mixed = infos + [Diagnostic("LP201", WARNING, "f", 0, "b")]
        assert worst_severity(mixed) == WARNING
        mixed.append(Diagnostic("LP101", ERROR, "f", 0, "c"))
        assert worst_severity(mixed) == ERROR

    def test_format_clean(self):
        text = format_diagnostics([], name="demo")
        assert text == "lint report for demo\n  clean: no diagnostics"

    def test_format_counts_footer(self):
        text = format_diagnostics([
            Diagnostic("LP204", INFO, "f", 0, "a"),
            Diagnostic("LP201", WARNING, "f", 1, "b"),
        ], name="demo")
        assert text.endswith("0 error(s), 1 warning(s), 1 info")


class TestCheckers:
    def test_clean_program_has_no_diagnostics(self):
        assert lint_source(CLEAN) == []

    def test_unknown_dependence_reports_lp204(self):
        diagnostics = lint_source(UNKNOWN_DEP)
        assert [d.id for d in diagnostics] == ["LP204"]
        assert diagnostics[0].severity == INFO
        assert "unequal strides" in diagnostics[0].message

    def test_broken_ir_reports_lp101(self):
        # Hand-built module with a phi missing an incoming entry; the
        # stubbed static_info/instrumentation keep LintContext from
        # running loop analyses over broken IR.
        module = Module("broken")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        merge = f.append_block("merge")
        IRBuilder(entry).br(merge)
        phi = Phi(I32, "p")
        merge.insert_phi(phi)
        IRBuilder(merge).ret(phi)
        context = LintContext(
            module,
            static_info=SimpleNamespace(loop_infos={}),
            instrumentation={},
            name="broken")
        diagnostics = run_lint(context, only=["ir-verify"])
        assert [d.id for d in diagnostics] == ["LP101"]
        assert diagnostics[0].severity == ERROR
        assert "phi incoming" in diagnostics[0].message

    def test_unsimplified_loop_reports_shape_warnings(self):
        # A hand-built self-loop with no preheader block: entry branches
        # straight into the header, which loops on itself forever.
        module = Module("shape")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        header = f.append_block("header")
        b = IRBuilder(entry)
        cond = b.icmp("eq", b.const_int(0), b.const_int(0))
        exit_block = f.append_block("exit")
        b.condbr(cond, header, exit_block)
        IRBuilder(header).br(header)
        IRBuilder(exit_block).ret(b.const_int(0))

        from repro.core.static_info import ModuleStaticInfo

        context = LintContext(module, static_info=ModuleStaticInfo(module),
                              instrumentation={}, name="shape")
        diagnostics = run_lint(context, only=["loop-shapes"])
        ids = sorted(d.id for d in diagnostics)
        assert "LP201" in ids  # no preheader (entry is not a dedicated one)
        assert "LP203" in ids  # no exit edge

    def test_multi_latch_loop_reports_lp205(self):
        # Two blocks branch back to the header: the loop is dropped from
        # the census (untrackable) and LP205 says so explicitly.
        module = Module("latches")
        f = module.add_function("f", I32, [])
        entry = f.append_block("entry")
        header = f.append_block("header")
        body1 = f.append_block("body1")
        body2 = f.append_block("body2")
        exit_block = f.append_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        iv = b.phi(I32, "i")
        cond = b.icmp("slt", iv, b.const_int(10))
        b.condbr(cond, body1, exit_block)
        b.position_at_end(body1)
        nxt = b.add(iv, b.const_int(1))
        parity = b.icmp("eq", b.srem(nxt, b.const_int(2)), b.const_int(0))
        b.condbr(parity, header, body2)
        b.position_at_end(body2)
        b.br(header)
        iv.add_incoming(b.const_int(0), entry)
        iv.add_incoming(nxt, body1)
        iv.add_incoming(nxt, body2)
        IRBuilder(exit_block).ret(iv)

        from repro.core.static_info import ModuleStaticInfo

        static_info = ModuleStaticInfo(module)
        (static,) = static_info.loops.values()
        assert not static.trackable
        assert static.untrackable_reason == "multi-latch"
        context = LintContext(module, static_info=static_info,
                              instrumentation={}, name="latches")
        diagnostics = run_lint(context, only=["loop-shapes"])
        ids = sorted(d.id for d in diagnostics)
        assert "LP202" in ids  # multiple backedges, the shape warning
        assert "LP205" in ids  # and the census-exclusion note
        (note,) = [d for d in diagnostics if d.id == "LP205"]
        assert note.severity == INFO
        assert "2 latches" in note.message

    def test_untrackable_reason_round_trips(self):
        from repro.core.static_info import (
            LoopStatic,
            loop_static_from_dict,
            loop_static_to_dict,
        )

        static = LoopStatic("f.header", "f", 1)
        static.trackable = False
        static.untrackable_reason = "multi-latch"
        restored = loop_static_from_dict(loop_static_to_dict(static))
        assert restored.untrackable_reason == "multi-latch"
        assert not restored.trackable
        # Entries written before the field existed stay loadable.
        legacy = loop_static_to_dict(static)
        del legacy["untrackable_reason"]
        assert loop_static_from_dict(legacy).untrackable_reason is None

    def test_all_shipped_benches_lint_clean_of_errors(self):
        # Spot-check a couple of real programs: zero error severity.
        from repro.bench import SuiteRunner, find_program

        runner = SuiteRunner()
        for name in ("specint2000/mcf_like", "eembc/viterbi_like"):
            lp = runner.instance(find_program(name))
            diagnostics = run_lint(LintContext.for_program(lp))
            assert worst_severity(diagnostics) in (None, WARNING, INFO)


class TestDeterminism:
    def test_report_is_stable_across_runs(self):
        first = format_diagnostics(lint_source(UNKNOWN_DEP), name="d")
        second = format_diagnostics(lint_source(UNKNOWN_DEP), name="d")
        assert first == second

    def test_ordering_follows_sort_key(self):
        diagnostics = lint_source(UNKNOWN_DEP)
        assert diagnostics == sorted(diagnostics, key=lambda d: d.sort_key)


class TestCLI:
    def test_lint_file_clean_exit_zero(self, tmp_path):
        path = tmp_path / "clean.c"
        path.write_text(CLEAN)
        out = io.StringIO()
        assert main(["lint", str(path)], out=out) == 0
        assert "clean: no diagnostics" in out.getvalue()

    def test_lint_file_with_infos_still_exit_zero(self, tmp_path):
        path = tmp_path / "unknown.c"
        path.write_text(UNKNOWN_DEP)
        out = io.StringIO()
        assert main(["lint", str(path)], out=out) == 0
        assert "LP204" in out.getvalue()

    def test_lint_errors_only_filter(self, tmp_path):
        path = tmp_path / "unknown.c"
        path.write_text(UNKNOWN_DEP)
        out = io.StringIO()
        assert main(["lint", "--errors-only", str(path)], out=out) == 0
        assert "LP204" not in out.getvalue()

    def test_lint_without_target_is_usage_error(self):
        out = io.StringIO()
        assert main(["lint"], out=out) == 2

    def test_lint_single_bench(self):
        out = io.StringIO()
        assert main(["lint", "--bench", "eembc/viterbi_like"], out=out) == 0
        assert "lint report for eembc/viterbi_like" in out.getvalue()

    def test_lint_whole_suite(self):
        from repro.bench.suites import suite_programs

        out = io.StringIO()
        assert main(["lint", "--bench", "eembc"], out=out) == 0
        reports = out.getvalue().count("lint report for eembc/")
        assert reports == len(suite_programs("eembc"))
