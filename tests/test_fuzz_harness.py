"""The four-way oracle, the shrinker, and the quarantine pipeline.

The interesting property — "the harness catches real miscompares" — is
untestable against a correct pipeline, so these tests *plant* bugs:
a JIT-only off-by-one (backends oracle) and a dependence analysis that
lies about DOALL (crosscheck oracle). Each planted bug must flow all the
way through: oracle fires, shrinker minimizes, corpus stores, and the
CLI ``--replay`` exit code flips from 1 (reproduces) to 0 (fixed) when
the bug is removed.
"""

import io
import json

import pytest

from repro import cli
from repro.analysis.depend import VERDICT_DOALL
from repro.core.static_info import ModuleStaticInfo
from repro.fuzz.corpus import load_case, load_cases, replay_case
from repro.fuzz.genprog import generate_program
from repro.fuzz.harness import ORACLES, fuzz_campaign, run_oracles
from repro.interp.interpreter import Interpreter
from repro.runtime.telemetry import RunTelemetry

LCD_SOURCE = """
int N = 64;
int A[64];
int main() {
  int i;
  A[0] = 1;
  for (i = 1; i < N; i = i + 1) { A[i] = A[i-1] + i; }
  return A[63] & 65535;
}
"""


def _plant_jit_bug(monkeypatch):
    """JIT profiles return result+1: a backend miscompare the closure and
    vector tiers do not share."""
    original = Interpreter.run

    def buggy(self, function_name="main", args=()):
        result = original(self, function_name, args)
        if self.backend == "jit" and isinstance(result, int):
            return result + 1
        return result

    monkeypatch.setattr(Interpreter, "run", buggy)


def _plant_unsound_doall(monkeypatch):
    """The static analysis claims DOALL for every loop — the crosscheck
    oracle must notice on any program with a real loop-carried dep."""
    original = ModuleStaticInfo.dependence

    def lying(self):
        table = original(self)
        for dep in table.values():
            dep.verdict = VERDICT_DOALL
        return table

    monkeypatch.setattr(ModuleStaticInfo, "dependence", lying)


# -- run_oracles ---------------------------------------------------------------


def test_clean_program_passes_all_oracles():
    program = generate_program(0, "mixed")
    report = run_oracles(program.source, program.name)
    assert report.ok
    assert report.failed_oracles == []
    assert set(report.checks) == set(ORACLES)
    assert all(state == "ok" for state in report.checks.values())
    assert report.wall_s > 0.0


def test_planted_jit_bug_trips_backends_oracle(monkeypatch):
    _plant_jit_bug(monkeypatch)
    program = generate_program(0, "mixed")
    report = run_oracles(program.source, program.name)
    assert not report.ok
    assert "backends" in report.failed_oracles
    assert report.checks["backends"] == "fail"
    # The verifier never saw the runtime bug.
    assert report.checks["verifier"] == "ok"
    assert any("jit" in failure.detail for failure in report.failures)
    assert "DISAGREEMENT" in report.describe()


def test_planted_unsound_doall_trips_crosscheck_oracle(monkeypatch):
    _plant_unsound_doall(monkeypatch)
    report = run_oracles(LCD_SOURCE, "planted-doall")
    assert "crosscheck" in report.failed_oracles
    assert any("unsound" in f.detail or "conflict" in f.detail
               for f in report.failures if f.oracle == "crosscheck")


def test_broken_source_lands_in_verifier_oracle():
    report = run_oracles("int main() { return undeclared; }", "broken")
    assert report.failed_oracles == ["verifier"]
    # Everything downstream is skipped, not silently "ok".
    assert report.checks["backends"] == "skipped"
    assert report.checks["crosscheck"] == "skipped"


def test_trapping_source_lands_in_execution_oracle():
    report = run_oracles(
        "int main() { int z; z = 0; return 1 / z; }", "trap")
    assert report.failed_oracles == ["execution"]
    assert report.checks["backends"] == "skipped"


# -- campaign + shrink + corpus + replay ---------------------------------------


def test_campaign_quarantines_shrinks_and_replays(monkeypatch, tmp_path):
    corpus = tmp_path / "corpus"

    with pytest.MonkeyPatch.context() as planted:
        _plant_jit_bug(planted)
        summary = fuzz_campaign(seed=0, count=1, profile="mixed",
                                corpus_dir=corpus)
        assert not summary.ok
        assert summary.cases == 1
        [case] = summary.quarantined
        assert case.oracle == "backends"
        assert case.case_id == "mixed-s0-backends"

        # The shrinker made real progress and kept the failure.
        original = generate_program(0, "mixed").source
        assert case.original_source == original
        assert len(case.source) < len(original)

        # The corpus round-trips through JSON.
        path = corpus / "mixed-s0-backends.json"
        assert path.is_file()
        stored = json.loads(path.read_text())
        assert stored["schema"] == 1
        assert stored["oracle"] == "backends"
        assert "|" in stored["fingerprint"]  # off|on pipeline fingerprints
        loaded = load_case("mixed-s0-backends", root=corpus)
        assert loaded.source == case.source

        # While the bug is planted the case still reproduces...
        assert not replay_case(loaded).ok
        assert _cli(["fuzz", "--replay", str(path)]) == 1

    # ...and once "fixed" (patch undone) replay and the CLI both agree.
    loaded = load_case("mixed-s0-backends", root=corpus)
    assert replay_case(loaded).ok
    assert _cli(["fuzz", "--replay", str(path)]) == 0


def _cli(argv):
    return cli.main(argv, out=io.StringIO())


def test_cli_replay_missing_case_exits_2(tmp_path):
    assert _cli(["fuzz", "--replay", "nope-s0-backends",
                 "--corpus-dir", str(tmp_path)]) == 2


def test_cli_campaign_exit_codes(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    corpus = tmp_path / "corpus"
    argv = ["fuzz", "--seed", "0", "--count", "1", "--profile", "affine",
            "--corpus-dir", str(corpus), "--no-shrink"]
    assert _cli(argv) == 0
    with pytest.MonkeyPatch.context() as planted:
        _plant_jit_bug(planted)
        assert _cli(argv) == 1
    assert load_cases(corpus)[0].case_id == "affine-s0-backends"


def test_campaign_time_budget_zero_stops_immediately(tmp_path):
    summary = fuzz_campaign(seed=0, count=50, profile="affine",
                            time_budget=0.0, corpus_dir=tmp_path)
    assert summary.budget_exhausted
    assert summary.cases == 0
    assert summary.ok
    assert "budget exhausted" in summary.describe()


def test_no_shrink_quarantines_original(monkeypatch, tmp_path):
    _plant_jit_bug(monkeypatch)
    summary = fuzz_campaign(seed=0, count=1, profile="affine",
                            corpus_dir=tmp_path, shrink=False)
    [case] = summary.quarantined
    assert case.source == case.original_source


# -- telemetry ledger ----------------------------------------------------------


def test_campaign_records_fuzz_cases_in_ledger(monkeypatch, tmp_path):
    runs = tmp_path / "runs"
    telemetry = RunTelemetry.create(root=runs)
    with pytest.MonkeyPatch.context() as planted:
        _plant_jit_bug(planted)
        fuzz_campaign(seed=0, count=2, profile="affine",
                      corpus_dir=tmp_path / "corpus", shrink=False,
                      telemetry=telemetry)
    telemetry.finish(status="quarantined")

    fuzz = telemetry.summary()["fuzz"]
    assert fuzz["cases"] == 2
    assert fuzz["quarantined"] == 2
    assert fuzz["by_oracle"].get("backends") == 2

    # The ledger replays: a resumed run sees the same tallies.
    resumed = RunTelemetry.resume(telemetry.run_id, root=runs)
    assert resumed.summary()["fuzz"]["cases"] == 2
    assert resumed.summary()["fuzz"]["quarantined"] == 2
