"""Differential tests over *transformed* modules.

The structural-transform pipeline rewrites loops, so it gets the same
backend-equivalence treatment as the untransformed path
(test_differential_backends.py): with transforms on, the closure
interpreter, the block-template JIT, and the vector tier must produce
byte-identical serialized profiles. Separately, the transforms must be
observationally safe: program result and output are identical with the
pipeline on and off, per backend.

Parametrized over sources the passes actually fire on — one per pass,
plus the one bundled benchmark fission restructures — so a regression in
any single transform shows up by name.
"""

import json

import pytest

from repro.core.framework import Loopapalooza
from repro.frontend.codegen import compile_source
from repro.runtime.serialize import profile_to_dict

FISSION_SRC = """
int A[64]; int B[64]; int S[64];
int main() {
  for (int i = 1; i < 64; i = i + 1) {
    A[i] = B[i] + 1;
    S[i] = S[i-1] + B[i];
  }
  print_int(A[5] + S[63]);
  return A[5] + S[63];
}
"""

FRONT_PEEL_SRC = """
int A[64];
int main() {
  A[0] = 7;
  for (int i = 0; i < 64; i = i + 1) {
    A[i] = A[0] + 1;
  }
  print_int(A[9]);
  return A[9];
}
"""

BACK_PEEL_SRC = """
int A[64];
int main() {
  A[63] = 5;
  for (int i = 0; i < 64; i = i + 1) {
    A[i] = A[63] + 1;
  }
  print_int(A[9] + A[63]);
  return A[9] + A[63];
}
"""

FUSION_SRC = """
int A[64]; int B[64];
int main() {
  for (int i = 0; i < 64; i = i + 1) { A[i] = i; }
  for (int j = 0; j < 64; j = j + 1) { B[j] = j + j; }
  print_int(A[3] + B[4]);
  return A[3] + B[4];
}
"""

SOURCES = {
    "fission": FISSION_SRC,
    "front-peel": FRONT_PEEL_SRC,
    "back-peel": BACK_PEEL_SRC,
    "fusion": FUSION_SRC,
}

BACKENDS = ("closure", "jit", "vec")


def _transformed_bench_programs():
    """Bundled benchmarks the transform pipeline actually restructures."""
    from repro.bench.suites import all_programs

    chosen = []
    for program in all_programs():
        module = compile_source(program.source, transform=True)
        if module.transform_log:
            chosen.append(program)
    return chosen


def _canonical_profile(source, name, backend, transform):
    lp = Loopapalooza(source, name=name, backend=backend,
                      transform=transform)
    profile = lp.profile()
    text = json.dumps(profile_to_dict(profile), sort_keys=True)
    return text, profile.result, lp.output


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_backends_profile_transformed_modules_identically(name):
    source = SOURCES[name]
    assert compile_source(source, transform=True).transform_log, \
        f"{name}: the transform no longer fires; the test is vacuous"
    profiles = {
        backend: _canonical_profile(source, name, backend, transform=True)
        for backend in BACKENDS
    }
    reference = profiles["closure"]
    for backend in ("jit", "vec"):
        assert profiles[backend] == reference, \
            f"{backend} diverges from closure on transformed {name}"


@pytest.mark.parametrize("name", sorted(SOURCES))
@pytest.mark.parametrize("backend", BACKENDS)
def test_transform_preserves_observable_behavior(name, backend):
    source = SOURCES[name]
    _, result_off, output_off = _canonical_profile(
        source, name, backend, transform=False)
    _, result_on, output_on = _canonical_profile(
        source, name, backend, transform=True)
    assert result_on == result_off
    assert output_on == output_off


def test_transformed_bench_programs_profile_identically():
    programs = _transformed_bench_programs()
    # The suite currently has at least one fission candidate; if the
    # passes stop firing anywhere this assert flags the silent loss.
    assert programs, "no bundled benchmark is transformed any more"
    for program in programs:
        profiles = {
            backend: _canonical_profile(
                program.source, program.name, backend, transform=True)
            for backend in BACKENDS
        }
        reference = profiles["closure"]
        for backend in ("jit", "vec"):
            assert profiles[backend] == reference, \
                f"{backend} diverges on transformed {program.full_name}"
        untransformed = {
            backend: _canonical_profile(
                program.source, program.name, backend, transform=False)
            for backend in BACKENDS
        }
        for backend in BACKENDS:
            assert untransformed[backend][1:] == reference[1:], \
                f"transform changes behavior of {program.full_name}"


@pytest.mark.slow
def test_fuzzed_transform_candidates_profile_identically():
    """25 seeds of the fuzzer's ``transforms`` grammar profile: the same
    three-way byte-equality and soundness checks as above, but over
    generated programs biased toward fission/fusion/peel candidates
    instead of hand-written ones. Part of the CI fuzz-smoke job
    (``-m slow``)."""
    from repro.fuzz.genprog import generate_program
    from repro.reporting.crosscheck import crosscheck_program

    fired = 0
    for seed in range(25):
        program = generate_program(seed, "transforms")
        if compile_source(program.source, transform=True).transform_log:
            fired += 1
        profiles = {
            backend: _canonical_profile(
                program.source, program.name, backend, transform=True)
            for backend in BACKENDS
        }
        reference = profiles["closure"]
        for backend in ("jit", "vec"):
            assert profiles[backend] == reference, \
                f"{backend} diverges on transformed {program.name}"
        off = _canonical_profile(
            program.source, program.name, "closure", transform=False)
        assert off[1:] == reference[1:], \
            f"transform changes behavior of {program.name}"
        for transform in (False, True):
            lp = Loopapalooza(program.source, name=program.name,
                              transform=transform)
            unsound = [row for row in crosscheck_program(lp, program.name)
                       if row.category == "unsound-static-doall"]
            assert not unsound, \
                f"{program.name} (transform={transform}): {unsound}"
    # The grammar bias must keep the passes engaged, or the sweep decays
    # into re-testing the untransformed pipeline.
    assert fired >= 5, f"transforms fired on only {fired}/25 fuzz programs"
