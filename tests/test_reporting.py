"""Reporting / experiment-harness tests."""

import pytest

from repro.reporting import (
    arith_mean,
    format_census,
    format_coverage,
    format_figure4,
    format_speedup_figure,
    geomean,
    speedup_percent,
)
from repro.reporting.experiments import COVERAGE_CONFIGS


class TestStats:
    def test_geomean_basics(self):
        assert geomean([4.0]) == pytest.approx(4.0)
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 1.0

    def test_arith_mean(self):
        assert arith_mean([1, 2, 3]) == 2.0
        assert arith_mean([]) == 0.0

    def test_speedup_percent_matches_kejariwal_convention(self):
        assert speedup_percent(1.1818) == pytest.approx(18.18, abs=0.01)


class TestFormatting:
    def test_speedup_figure_renders(self):
        rows = {
            "doall:reduc0-dep0-fn0": {"specint2000": 1.1, "specint2006": 1.3},
            "helix:reduc1-dep1-fn2": {"specint2000": 4.6, "specint2006": 7.2},
        }
        text = format_speedup_figure(rows, "Fig. 2 test")
        assert "Fig. 2 test" in text
        assert "4.60x" in text
        assert "specint2006" in text

    def test_figure4_marks_winner(self):
        data = {
            "specfp2000/art_like": {"pdoall": 39.0, "helix": 28.0},
            "specint2000/gzip_like": {"pdoall": 1.4, "helix": 4.2},
        }
        text = format_figure4(data)
        lines = text.splitlines()
        art_line = [l for l in lines if "art_like" in l][0]
        gzip_line = [l for l in lines if "gzip_like" in l][0]
        assert art_line.rstrip().endswith("PDOALL")
        assert gzip_line.rstrip().endswith("HELIX")

    def test_coverage_renders_percent(self):
        rows = {"helix:reduc0-dep1-fn2": {"eembc": 92.5}}
        text = format_coverage(rows)
        assert "92.5%" in text

    def test_census_renders(self):
        rows = {"eembc": {"loops": 30, "computable_phis": 28,
                          "reduction_phis": 12, "noncomputable_phis": 4,
                          "loops_with_calls": 20, "loops_with_unsafe_calls": 0}}
        text = format_census(rows)
        assert "eembc" in text and "30" in text


class TestExperimentHarness:
    def test_coverage_configs_match_paper_figure5(self):
        names = [c.name for c in COVERAGE_CONFIGS]
        assert names == [
            "pdoall:reduc0-dep0-fn2",
            "helix:reduc0-dep0-fn2",
            "helix:reduc0-dep1-fn2",
        ]

    def test_table1_census_structure(self, runner):
        from repro.reporting import table1_census

        rows = table1_census(runner)
        assert set(rows) == {
            "specint2000", "specint2006", "eembc", "specfp2000", "specfp2006",
        }
        for totals in rows.values():
            assert totals["loops"] > 0
            assert totals["computable_phis"] > 0

    def test_figure2_rows_cover_all_configs(self, runner):
        from repro.core import paper_configurations
        from repro.reporting import figure2_nonnumeric

        rows = figure2_nonnumeric(runner)
        assert len(rows) == len(paper_configurations())
        for row in rows.values():
            assert set(row) == {"specint2000", "specint2006"}
            assert all(v >= 0.99 for v in row.values())


class TestDynamicCensus:
    def test_demo_program_classification(self):
        from repro.core import Loopapalooza
        from repro.reporting import dynamic_census_of

        lp = Loopapalooza(
            """
            int A[128]; int OUT[128];
            float S = 0.0;
            int main() {
              int i;
              float drift = 0.5;
              A[0] = 7;
              for (i = 1; i < 128; i = i + 1) {      // frequent memory LCD
                A[i] = (A[i-1] * 5 + i) & 1023;
              }
              for (i = 0; i < 128; i = i + 1) {      // predictable reg LCD
                OUT[i] = (int)(drift * 2.0);
                drift = drift + 0.25;
              }
              S = drift;
              return OUT[100];
            }
            """,
            "dyn_census",
        )
        census = dynamic_census_of(lp)
        by_loop = {entry.loop_id: entry for entry in census.values()}
        chain = by_loop["main.for.cond1"]
        assert chain.memory_class == "frequent"
        drift_loop = by_loop["main.for.cond5"]
        assert drift_loop.memory_class == "none"
        assert len(drift_loop.predictable_lcds) == 1
        assert not drift_loop.unpredictable_lcds

    def test_suite_census_shape(self, runner):
        from repro.reporting import format_dynamic_census, suite_dynamic_census

        totals = suite_dynamic_census(runner, "specint2000")
        assert totals["loops_frequent_mem"] > 0
        assert totals["unpredictable_reg_lcds"] > totals["predictable_reg_lcds"]
        text = format_dynamic_census({"specint2000": totals})
        assert "specint2000" in text
