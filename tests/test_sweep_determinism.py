"""The parallel sweep engine must be invisible in the results.

``SuiteRunner.evaluate_many(jobs=N)`` fans the (benchmark x config) grid
out over a process pool; these tests pin the contract that the fan-out
changes wall-clock only: grid structure, ordering, and every reported
float are identical to the serial path, and the workers' profiling runs
land in the shared disk store so the parent never re-profiles.
"""

from repro.bench.suites import SuiteRunner, suite_programs

CONFIGS = (
    "doall:reduc1-dep0-fn0",
    "pdoall:reduc1-dep2-fn2",
    "helix:reduc1-dep1-fn2",
)


def _programs():
    return suite_programs("eembc")[:4]


def _assert_identical_grids(expected, actual):
    assert list(actual) == list(expected)
    for full_name, row in expected.items():
        assert list(actual[full_name]) == list(row)
        for config_name, result in row.items():
            other = actual[full_name][config_name]
            assert other.speedup == result.speedup
            assert other.coverage == result.coverage
            assert other.total_serial == result.total_serial
            assert other.total_parallel == result.total_parallel
            assert set(other.loops) == set(result.loops)
            for loop_id, summary in result.loops.items():
                other_summary = other.loops[loop_id]
                assert other_summary.serial_cost == summary.serial_cost
                assert other_summary.parallel_cost == summary.parallel_cost
                assert other_summary.iterations == summary.iterations
                assert (
                    other_summary.parallel_invocations
                    == summary.parallel_invocations
                )


def test_parallel_sweep_identical_to_serial(tmp_path):
    programs = _programs()
    serial = SuiteRunner(cache_dir=tmp_path / "serial")
    serial_grid = serial.evaluate_many(programs, CONFIGS)

    parallel = SuiteRunner(cache_dir=tmp_path / "parallel")
    parallel_grid = parallel.evaluate_many(programs, CONFIGS, jobs=4)

    _assert_identical_grids(serial_grid, parallel_grid)


def test_parallel_sweep_populates_parent_store(tmp_path):
    programs = _programs()
    runner = SuiteRunner(cache_dir=tmp_path / "shared")
    runner.evaluate_many(programs, CONFIGS, jobs=2)
    # The workers profiled and stored; the parent materializes instances
    # (e.g. for the Table-I census) entirely from the shared store.
    for program in programs:
        runner.instance(program)
    assert runner.profiles_measured == 0


def test_evaluate_many_memoizes(tmp_path):
    programs = _programs()[:2]
    runner = SuiteRunner(cache_dir=tmp_path / "memo")
    first = runner.evaluate_many(programs, CONFIGS)
    second = runner.evaluate_many(programs, CONFIGS, jobs=4)
    # Every cell was already memoized in-process: the jobs path submits no
    # work and returns the very same result objects.
    for full_name, row in first.items():
        for config_name, result in row.items():
            assert second[full_name][config_name] is result


def test_grid_order_follows_input_order(tmp_path):
    programs = list(reversed(_programs()))
    runner = SuiteRunner(cache_dir=tmp_path / "order")
    grid = runner.evaluate_many(programs, CONFIGS, jobs=2)
    assert list(grid) == [program.full_name for program in programs]
    for row in grid.values():
        assert list(row) == list(CONFIGS)
