"""CLI and profile-serialization tests."""

import io
import json

import pytest

from repro.cli import main
from repro.core import Loopapalooza, paper_configurations
from repro.errors import FrameworkError
from repro.runtime.serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)

DEMO = """
int A[64];
float S = 0.0;
int main() {
  int i;
  float acc = 0.0;
  A[0] = 3;
  for (i = 1; i < 64; i = i + 1) { A[i] = (A[i-1] * 5 + i) & 1023; }
  for (i = 0; i < 64; i = i + 1) { acc = acc + (float)A[i]; }
  S = acc;
  print_int((int)acc);
  return (int)acc & 32767;
}
"""


@pytest.fixture()
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCLI:
    def test_run(self, demo_file):
        code, text = run_cli("run", demo_file)
        assert code == 0
        assert "result:" in text
        assert "dynamic IR instructions:" in text
        assert "program output:" in text

    def test_census(self, demo_file):
        code, text = run_cli("census", demo_file)
        assert code == 0
        assert "computable" in text
        assert "reduction" in text

    def test_evaluate_default_configs(self, demo_file):
        code, text = run_cli("evaluate", demo_file)
        assert code == 0
        for config in paper_configurations():
            assert config.name in text

    def test_evaluate_specific_config(self, demo_file):
        code, text = run_cli(
            "evaluate", demo_file, "--config", "helix:reduc1-dep1-fn2"
        )
        assert code == 0
        assert text.count("helix:") == 1
        assert "doall:" not in text

    def test_diagnose(self, demo_file):
        code, text = run_cli("diagnose", demo_file)
        assert code == 0
        assert "unlocks at" in text

    def test_bench_lists_programs(self):
        code, text = run_cli("bench")
        assert code == 0
        assert "specint2000/gzip_like" in text
        assert text.count("\n") >= 48

    def test_missing_file_is_an_error(self):
        code, _ = run_cli("run", "/nonexistent/never.c")
        assert code == 1

    def test_bad_config_is_an_error(self, demo_file):
        code, _ = run_cli("evaluate", demo_file, "--config", "warp9")
        assert code == 1

    def test_bad_program_is_an_error(self, tmp_path):
        path = tmp_path / "broken.c"
        path.write_text("int main() { return ; }")
        code, _ = run_cli("run", str(path))
        assert code == 1


class TestSerialization:
    def test_round_trip_dict(self):
        lp = Loopapalooza(DEMO, "serialize_demo")
        profile = lp.profile()
        data = profile_to_dict(profile)
        json.dumps(data)  # must be JSON-safe
        rebuilt = profile_from_dict(data)
        assert rebuilt.total_cost == profile.total_cost
        assert rebuilt.result == profile.result
        assert len(rebuilt.all_invocations()) == len(profile.all_invocations())
        for original, copy in zip(
            profile.all_invocations(), rebuilt.all_invocations()
        ):
            assert original.loop_id == copy.loop_id
            assert original.iter_starts == copy.iter_starts
            assert original.conflict_pairs == copy.conflict_pairs
            assert original.lcd_values == copy.lcd_values

    def test_round_trip_preserves_evaluation(self):
        from repro.core.evaluator import evaluate_config
        from repro.core.config import LPConfig

        lp = Loopapalooza(DEMO, "serialize_eval")
        profile = lp.profile()
        rebuilt = profile_from_dict(profile_to_dict(profile))
        for config in (LPConfig("helix", 1, 1, 2), LPConfig("pdoall", 1, 2, 2)):
            original = evaluate_config(profile, lp.static_info, config)
            copied = evaluate_config(rebuilt, lp.static_info, config)
            assert copied.speedup == pytest.approx(original.speedup)
            assert copied.coverage == pytest.approx(original.coverage)

    def test_save_and_load_file(self, tmp_path):
        lp = Loopapalooza(DEMO, "serialize_file")
        profile = lp.profile()
        path = tmp_path / "profile.json"
        save_profile(profile, path)
        loaded = load_profile(path)
        assert loaded.total_cost == profile.total_cost

    def test_version_check(self):
        with pytest.raises(FrameworkError, match="format"):
            profile_from_dict({"format": 999})

    def test_parent_links_rebuilt(self):
        lp = Loopapalooza(
            """
            int A[64];
            int main() {
              int i; int j;
              for (i = 0; i < 4; i = i + 1) {
                for (j = 0; j < 4; j = j + 1) { A[i*4+j] = i; }
              }
              return 0;
            }
            """,
            "nested_ser",
        )
        rebuilt = profile_from_dict(profile_to_dict(lp.profile()))
        outer = rebuilt.top_level[0]
        assert all(child.parent is outer for child in outer.children)
