"""Unit tests for IR values, instructions, blocks, functions, modules."""

import pytest

from repro.errors import IRError
from repro.ir import (
    F64,
    I1,
    I32,
    VOID,
    ArrayType,
    BinaryOp,
    Br,
    CondBr,
    ConstantFloat,
    ConstantInt,
    IRBuilder,
    Module,
    Phi,
    PointerType,
    Ret,
    Store,
)


def make_function(return_type=I32, params=()):
    module = Module("t")
    return module, module.add_function("f", return_type, list(params))


class TestConstants:
    def test_int_wraps_to_type(self):
        assert ConstantInt(I32, 2**31).value == -(2**31)

    def test_bool_range(self):
        assert ConstantInt(I1, 1).value == 1
        assert ConstantInt(I1, 0).value == 0

    def test_float_value(self):
        assert ConstantFloat(1.5).value == 1.5
        assert ConstantFloat(1.5).type is F64

    def test_constants_print_as_literals(self):
        assert ConstantInt(I32, -7).short_name() == "-7"


class TestUseLists:
    def test_operands_register_uses(self):
        a = ConstantInt(I32, 1)
        b = ConstantInt(I32, 2)
        op = BinaryOp("add", a, b)
        assert (op, 0) in a.uses
        assert (op, 1) in b.uses

    def test_replace_all_uses_with(self):
        module, function = make_function()
        block = function.append_block("entry")
        b = IRBuilder(block)
        x = b.add(b.const_int(1), b.const_int(2), "x")
        y = b.add(x, x, "y")
        z = b.const_int(5)
        x.replace_all_uses_with(z)
        assert y.lhs is z and y.rhs is z
        assert x.num_uses == 0
        assert (y, 0) in z.uses and (y, 1) in z.uses

    def test_erase_drops_operand_uses(self):
        module, function = make_function()
        block = function.append_block("entry")
        b = IRBuilder(block)
        x = b.add(b.const_int(1), b.const_int(2), "x")
        y = b.add(x, x, "y")
        y.erase_from_parent()
        assert x.num_uses == 0
        assert y.parent is None

    def test_users_deduplicates(self):
        a = ConstantInt(I32, 3)
        op = BinaryOp("add", a, a)
        assert list(op.operands) == [a, a]
        assert len(list(a.users())) == 1


class TestInstructionValidation:
    def test_binop_type_mismatch(self):
        with pytest.raises(IRError):
            BinaryOp("add", ConstantInt(I32, 1), ConstantFloat(1.0))

    def test_float_opcode_on_ints(self):
        with pytest.raises(IRError):
            BinaryOp("fadd", ConstantInt(I32, 1), ConstantInt(I32, 2))

    def test_unknown_opcode(self):
        with pytest.raises(IRError):
            BinaryOp("xadd", ConstantInt(I32, 1), ConstantInt(I32, 2))

    def test_store_type_mismatch(self):
        module = Module("t")
        g = module.add_global(I32, "g")
        with pytest.raises(IRError):
            Store(ConstantFloat(1.0), g)

    def test_condbr_requires_i1(self):
        module, function = make_function()
        b1 = function.append_block("a")
        b2 = function.append_block("b")
        with pytest.raises(IRError):
            CondBr(ConstantInt(I32, 1), b1, b2)

    def test_phi_incoming_type_checked(self):
        module, function = make_function()
        block = function.append_block("entry")
        phi = Phi(I32)
        block.insert_phi(phi)
        with pytest.raises(IRError):
            phi.add_incoming(ConstantFloat(0.0), block)

    def test_call_arity_checked(self):
        module = Module("t")
        callee = module.add_function("g", I32, [I32, I32])
        caller = module.add_function("f", I32, [])
        block = caller.append_block("entry")
        b = IRBuilder(block)
        with pytest.raises(IRError):
            b.call(callee, [b.const_int(1)])

    def test_call_arg_type_checked(self):
        module = Module("t")
        callee = module.add_function("g", I32, [F64])
        caller = module.add_function("f", I32, [])
        b = IRBuilder(caller.append_block("entry"))
        with pytest.raises(IRError):
            b.call(callee, [b.const_int(1)])


class TestBlocks:
    def test_append_after_terminator_rejected(self):
        module, function = make_function()
        block = function.append_block("entry")
        b = IRBuilder(block)
        b.ret(b.const_int(0))
        with pytest.raises(IRError):
            b.add(b.const_int(1), b.const_int(2))

    def test_phis_iterate_only_leading_phis(self):
        module, function = make_function()
        pred = function.append_block("pred")
        block = function.append_block("bb")
        IRBuilder(pred).br(block)
        phi = Phi(I32, "p")
        block.insert_phi(phi)
        phi.add_incoming(ConstantInt(I32, 0), pred)
        b = IRBuilder(block)
        b.ret(phi)
        assert list(block.phis()) == [phi]
        assert phi not in list(block.non_phi_instructions())

    def test_insert_phi_goes_after_existing_phis(self):
        module, function = make_function()
        block = function.append_block("bb")
        first = Phi(I32, "a")
        second = Phi(I32, "b")
        block.insert_phi(first)
        block.insert_phi(second)
        assert block.instructions == [first, second]

    def test_successors_and_predecessors(self):
        module, function = make_function()
        a = function.append_block("a")
        b = function.append_block("b")
        c = function.append_block("c")
        builder = IRBuilder(a)
        cond = builder.icmp("eq", builder.const_int(0), builder.const_int(0))
        builder.condbr(cond, b, c)
        IRBuilder(b).ret(ConstantInt(I32, 0))
        IRBuilder(c).ret(ConstantInt(I32, 1))
        assert a.successors() == [b, c]
        assert b.predecessors() == [a]

    def test_phi_remove_incoming(self):
        module, function = make_function()
        p1 = function.append_block("p1")
        p2 = function.append_block("p2")
        merge = function.append_block("m")
        IRBuilder(p1).br(merge)
        IRBuilder(p2).br(merge)
        phi = Phi(I32, "x")
        merge.insert_phi(phi)
        v1, v2 = ConstantInt(I32, 1), ConstantInt(I32, 2)
        phi.add_incoming(v1, p1)
        phi.add_incoming(v2, p2)
        phi.remove_incoming_for_block(p1)
        assert list(phi.incoming()) == [(v2, p2)]
        assert v1.num_uses == 0
        # remaining use indices stay consistent
        assert (phi, 0) in v2.uses


class TestModule:
    def test_duplicate_global_rejected(self):
        module = Module("t")
        module.add_global(I32, "g")
        with pytest.raises(IRError):
            module.add_global(I32, "g")

    def test_duplicate_function_rejected(self):
        module = Module("t")
        module.add_function("f", I32, [])
        with pytest.raises(IRError):
            module.add_function("f", VOID, [])

    def test_unknown_lookups_raise(self):
        module = Module("t")
        with pytest.raises(IRError):
            module.get_global("nope")
        with pytest.raises(IRError):
            module.get_function("nope")

    def test_global_initializer_flattening(self):
        module = Module("t")
        g = module.add_global(ArrayType(I32, 4), "a", [1, 2])
        assert g.flat_initializer() == [1, 2, 0, 0]
        s = module.add_global(F64, "x", 2.5)
        assert s.flat_initializer() == [2.5]
        z = module.add_global(ArrayType(F64, 3), "z")
        assert z.flat_initializer() == [0.0, 0.0, 0.0]

    def test_oversized_initializer_rejected(self):
        module = Module("t")
        g = module.add_global(ArrayType(I32, 2), "a", [1, 2, 3])
        with pytest.raises(ValueError):
            g.flat_initializer()

    def test_global_type_is_pointer(self):
        module = Module("t")
        g = module.add_global(I32, "g")
        assert g.type is PointerType(I32)
        assert g.allocated_type is I32

    def test_defined_functions_excludes_declarations(self):
        module = Module("t")
        module.add_function("decl", I32, [])
        f = module.add_function("def", I32, [])
        f.append_block("entry")
        assert module.defined_functions() == [f]


class TestTerminators:
    def test_br_successor_replacement(self):
        module, function = make_function()
        a = function.append_block("a")
        b = function.append_block("b")
        c = function.append_block("c")
        br = Br(b)
        a.append(br)
        br.replace_successor(b, c)
        assert br.successors() == [c]

    def test_ret_with_and_without_value(self):
        assert Ret().value is None
        assert Ret(ConstantInt(I32, 3)).value.value == 3
