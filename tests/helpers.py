"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

from repro.frontend import compile_source
from repro.ir import I32, IRBuilder, Module


def build_counting_loop(trip=10):
    """IR module: ``for (i = 0; i < trip; ++i);`` returning ``trip``.

    A minimal hand-built loop used by IR-level tests.
    """
    module = Module("counting")
    function = module.add_function("f", I32, [])
    entry = function.append_block("entry")
    header = function.append_block("header")
    body = function.append_block("body")
    exit_block = function.append_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    iv = b.phi(I32, "i")
    cond = b.icmp("slt", iv, b.const_int(trip), "cond")
    b.condbr(cond, body, exit_block)
    b.position_at_end(body)
    nxt = b.add(iv, b.const_int(1), "inext")
    b.br(header)
    iv.add_incoming(b.const_int(0), entry)
    iv.add_incoming(nxt, body)
    b.position_at_end(exit_block)
    b.ret(iv)
    return module, function


def minic_programs(profiles=("affine", "calls", "transforms", "mixed"),
                   max_seed=100_000):
    """Hypothesis strategy over generated MiniC programs.

    Draws a ``(seed, profile)`` pair and returns the corresponding
    :class:`repro.fuzz.genprog.GeneratedProgram` — the same grammar the
    ``repro fuzz`` campaign uses, so property tests and the fuzzer share
    one program distribution. Shrinking works through the seed integer;
    for oracle-failure minimization use :mod:`repro.fuzz.shrink` instead.
    """
    from hypothesis import strategies as st

    from repro.fuzz.genprog import generate_program

    return st.builds(
        generate_program,
        seed=st.integers(min_value=0, max_value=max_seed),
        profile=st.sampled_from(list(profiles)),
    )


def run_minic(source, fuel=20_000_000):
    """Compile and execute a MiniC program; returns (result, cost, output)."""
    from repro.interp.interpreter import run_module

    module = compile_source(source)
    result, machine = run_module(module, fuel=fuel)
    return result, machine.cost, machine.output
