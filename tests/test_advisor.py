"""Parallelizability advisor tests: annotation rules, evidence chains,
determinism, the soundness gate, and the hypothesis property that static
nest verdicts never contradict the dynamic crosscheck."""

import io

from hypothesis import given, settings

from helpers import minic_programs
from repro.analysis.depend import VERDICT_DOALL
from repro.cli import main
from repro.core.framework import Loopapalooza
from repro.reporting.advisor import (
    AdvisorReport,
    LoopAdvice,
    advise_program,
    format_advice,
)
from repro.reporting.crosscheck import crosscheck_program

# One @parallel fill, one @reduce sum, one @lcd recurrence, one UNKNOWN
# (data-dependent subscript) — every advisor bucket in a single program.
DEMO = """
int A[64]; int B[64]; int IDX[64];
int main() {
  int i;
  int s;
  s = 0;
  for (i = 0; i < 64; i = i + 1) { A[i] = i * 2; IDX[i] = i; }
  for (i = 0; i < 64; i = i + 1) { s = s + A[i]; }
  for (i = 1; i < 64; i = i + 1) { B[i] = B[i-1] + A[i]; }
  for (i = 0; i < 64; i = i + 1) { A[IDX[i]] = s; }
  return s;
}
"""


def demo_advices(crosscheck=False):
    lp = Loopapalooza(DEMO, name="advisor-demo")
    return advise_program(lp, crosscheck=crosscheck)


class TestAnnotationRules:
    def test_every_bucket_is_assigned(self):
        by_kind = {a.kind: a for a in demo_advices()}
        assert set(by_kind) == {"@parallel", "@reduce", "@lcd", None}
        assert by_kind["@reduce"].annotation == "@reduce(add)"
        assert by_kind["@lcd"].annotation == "@lcd(dist=1)"

    def test_evidence_chain_names_the_analyses(self):
        advices = demo_advices()
        for advice in advices:
            assert any(e.startswith("scev:") for e in advice.evidence)
            assert any(e.startswith("subscripts:") for e in advice.evidence)
        lcd = next(a for a in advices if a.kind == "@lcd")
        assert any(e.startswith("vector:") for e in lcd.evidence)
        assert any(e.startswith("distances:") for e in lcd.evidence)
        unadvised = next(a for a in advices if a.kind is None)
        assert any(e.startswith("blocked:") for e in unadvised.evidence)

    def test_crosscheck_join_adds_profile_agreement(self):
        advices = demo_advices(crosscheck=True)
        for advice in advices:
            assert advice.joined
            assert any(e.startswith("profile:") for e in advice.evidence)
        parallel = next(a for a in advices if a.kind == "@parallel")
        assert parallel.conflicts == 0 and parallel.invocations > 0
        lcd = next(a for a in advices if a.kind == "@lcd")
        assert lcd.conflicts > 0  # conflicts *confirm* the LCD

    def test_without_crosscheck_no_profile_claims(self):
        for advice in demo_advices():
            assert not advice.joined
            assert not any(e.startswith("profile:")
                           for e in advice.evidence)


class TestSoundnessGate:
    def test_demo_report_is_sound(self):
        report = AdvisorReport(demo_advices(crosscheck=True))
        assert report.unsound == []

    def test_conflicting_parallel_advice_is_flagged(self):
        bad = LoopAdvice("p", "f.loop", 1, "@parallel", ["scev: trip 4"],
                         conflicts=3, invocations=1, joined=True)
        report = AdvisorReport([bad])
        assert report.unsound == [bad]
        assert "SOUNDNESS VIOLATIONS" in format_advice(report)

    def test_lcd_conflicts_are_not_violations(self):
        lcd = LoopAdvice("p", "f.loop", 1, "@lcd(dist=1)", [],
                         conflicts=9, invocations=1, joined=True)
        assert AdvisorReport([lcd]).unsound == []

    def test_unjoined_advice_never_claims_soundness(self):
        stale = LoopAdvice("p", "f.loop", 1, "@parallel", [],
                           conflicts=0, invocations=0, joined=False)
        report = AdvisorReport([stale])
        assert report.unsound == []
        assert "soundness:" not in format_advice(report)


class TestFormattingAndCli:
    def test_output_is_deterministic(self):
        first = format_advice(AdvisorReport(demo_advices(crosscheck=True)))
        second = format_advice(AdvisorReport(demo_advices(crosscheck=True)))
        assert first == second

    def test_unadvised_loops_only_in_verbose(self):
        report = AdvisorReport(demo_advices())
        assert "(no annotation)" not in format_advice(report)
        assert "(no annotation)" in format_advice(report, verbose=True)

    def test_cli_advise_exits_zero_on_sound_file(self, tmp_path):
        path = tmp_path / "demo.c"
        path.write_text(DEMO)
        out = io.StringIO()
        assert main(["advise", str(path), "--crosscheck"], out=out) == 0
        text = out.getvalue()
        assert "@parallel" in text and "@reduce(add)" in text
        assert "@lcd(dist=1)" in text
        assert "every advised-parallel loop ran conflict-free" in text


class TestNestSoundnessProperty:
    @given(minic_programs(profiles=("affine", "mixed"), max_seed=2_000))
    @settings(max_examples=10, deadline=None)
    def test_static_verdicts_never_contradict_the_profile(self, program):
        # The advisor promise, as a property over generated nests: no
        # STATIC_DOALL loop — at any nest level — may show a dynamic
        # conflict, and the advisor report must agree (unsound == []).
        lp = Loopapalooza(program.source, name=program.name,
                          fuel=20_000_000)
        rows = crosscheck_program(lp, program.name)
        unsound = [r for r in rows if r.category == "unsound-static-doall"]
        assert unsound == []
        report = AdvisorReport(advise_program(lp, crosscheck=True))
        assert report.unsound == []
        # Outer-loop claims specifically (the nest-oracle invariant).
        conflicts = {}
        for invocation in lp.profile().all_invocations():
            conflicts[invocation.loop_id] = \
                conflicts.get(invocation.loop_id, 0) \
                + invocation.conflict_count
        dependence = lp.static_info.dependence()
        for loop_info in lp.static_info.loop_infos.values():
            for loop in loop_info.all_loops():
                if not loop.subloops:
                    continue
                verdict = dependence.get(loop.loop_id)
                if verdict is not None \
                        and verdict.verdict == VERDICT_DOALL:
                    assert conflicts.get(loop.loop_id, 0) == 0
