"""Configuration (Table II) tests."""

import pytest

from repro.core import BEST_HELIX, BEST_PDOALL, LPConfig, paper_configurations
from repro.errors import ConfigError


class TestConstruction:
    def test_defaults(self):
        config = LPConfig("pdoall")
        assert (config.reduc, config.dep, config.fn) == (0, 0, 0)

    def test_name_format(self):
        assert LPConfig("helix", 1, 1, 2).name == "helix:reduc1-dep1-fn2"
        assert LPConfig("doall", 0, 0, 0).flags == "reduc0-dep0-fn0"

    @pytest.mark.parametrize("kwargs", [
        dict(model="banana"),
        dict(model="pdoall", reduc=2),
        dict(model="pdoall", dep=4),
        dict(model="pdoall", fn=5),
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            LPConfig(**kwargs)

    @pytest.mark.parametrize("dep", [1, 2, 3])
    def test_doall_rejects_register_lcd_relaxations(self, dep):
        """Paper: dep1-dep3 are incompatible with DOALL."""
        with pytest.raises(ConfigError):
            LPConfig("doall", dep=dep)

    def test_equality_and_hash(self):
        a = LPConfig("helix", 1, 1, 2)
        b = LPConfig("helix", 1, 1, 2)
        assert a == b and hash(a) == hash(b)
        assert a != LPConfig("helix", 0, 1, 2)


class TestParse:
    def test_full_form(self):
        config = LPConfig.parse("helix:reduc1-dep1-fn2")
        assert config == BEST_HELIX

    def test_model_defaults_to_pdoall(self):
        config = LPConfig.parse("reduc1-dep2-fn2")
        assert config == BEST_PDOALL

    def test_partial_flags_default_to_zero(self):
        config = LPConfig.parse("pdoall:dep2")
        assert (config.reduc, config.dep, config.fn) == (0, 2, 0)

    def test_round_trip(self):
        for config in paper_configurations():
            assert LPConfig.parse(config.name) == config

    def test_bad_chunk(self):
        with pytest.raises(ConfigError):
            LPConfig.parse("pdoall:turbo3")


class TestPaperMatrix:
    def test_fourteen_configurations(self):
        configs = paper_configurations()
        assert len(configs) == 14
        assert len(set(configs)) == 14

    def test_models_in_presentation_order(self):
        models = [c.model for c in paper_configurations()]
        assert models == ["doall"] * 2 + ["pdoall"] * 8 + ["helix"] * 4

    def test_contains_the_named_best_configs(self):
        configs = paper_configurations()
        assert BEST_PDOALL in configs
        assert BEST_HELIX in configs

    def test_doall_rows_are_dep0(self):
        for config in paper_configurations():
            if config.model == "doall":
                assert config.dep == 0
