"""Transform pass tests: mem2reg, constfold, DCE, simplify-cfg, GVN,
loop-simplify, indvars, and the standard pipeline."""

import pytest

from repro.analysis import CFG, LoopInfo
from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.interp.interpreter import run_module
from repro.ir import verify_module
from repro.ir.instructions import Alloca, BinaryOp, Load, Phi, Store
from repro.passes import (
    is_loop_simplified,
    run_constfold_module,
    run_dce_module,
    run_indvars,
    run_loop_simplify_module,
    run_mem2reg_module,
    run_simplify_cfg_module,
    run_standard_pipeline,
)
from repro.passes.gvn import run_gvn_module


def compile_unoptimized(source):
    program = parse(source)
    module = CodeGenerator(analyze(program)).run()
    verify_module(module)
    return module


def count(module, cls):
    return sum(
        isinstance(i, cls)
        for f in module.defined_functions()
        for i in f.instructions()
    )


def behaviour(module):
    result, machine = run_module(module)
    return result, list(machine.output)


SAMPLE = """
int A[32];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 32; i = i + 1) {
    A[i] = i * 2;
    if (A[i] > 20) { s = s + A[i]; }
  }
  print_int(s);
  return s & 255;
}
"""


class TestMem2Reg:
    def test_promotes_scalars(self):
        module = compile_unoptimized(SAMPLE)
        before = count(module, Alloca)
        assert before >= 2
        promoted = run_mem2reg_module(module)
        verify_module(module)
        assert promoted == before
        assert count(module, Alloca) == 0

    def test_inserts_loop_phis(self):
        module = compile_unoptimized(SAMPLE)
        run_mem2reg_module(module)
        f = module.get_function("main")
        info = LoopInfo(f)
        loop = info.all_loops()[0]
        names = {phi.name for phi in loop.header.phis()}
        assert "i" in names and "s" in names

    def test_preserves_behaviour(self):
        module = compile_unoptimized(SAMPLE)
        expected = behaviour(compile_unoptimized(SAMPLE))
        run_mem2reg_module(module)
        assert behaviour(module) == expected

    def test_array_allocas_not_promoted(self):
        module = compile_unoptimized(
            """
            int main() {
              int buf[8];
              buf[0] = 3;
              return buf[0];
            }
            """
        )
        run_mem2reg_module(module)
        assert count(module, Alloca) == 1  # the array stays in memory

    def test_escaping_alloca_not_promoted(self):
        module = compile_unoptimized(
            """
            void set(int* p) { p[0] = 9; }
            int main() {
              int x = 0;
              set(&x);
              return x;
            }
            """
        )
        run_mem2reg_module(module)
        main = module.get_function("main")
        assert any(isinstance(i, Alloca) for i in main.instructions())
        result, _ = run_module(module)
        assert result == 9

    def test_shadowed_names_resolve_correctly(self):
        module = compile_unoptimized(
            """
            int main() {
              int x = 1;
              int i;
              for (i = 0; i < 3; i = i + 1) {
                int x2 = 100;
                x = x + x2;
              }
              return x;
            }
            """
        )
        run_mem2reg_module(module)
        result, _ = run_module(module)
        assert result == 301

    def test_no_dead_phis_left(self):
        module = compile_unoptimized(SAMPLE)
        run_mem2reg_module(module)
        for f in module.defined_functions():
            for block in f.blocks:
                for phi in block.phis():
                    assert any(u is not phi for u in phi.users()), (
                        f"dead phi {phi.name} survived"
                    )


class TestConstFold:
    def test_folds_arithmetic(self):
        module = compile_unoptimized(
            "int main() { return 2 * 3 + 4; }"
        )
        run_mem2reg_module(module)
        folded = run_constfold_module(module)
        assert folded >= 1
        result, machine = run_module(module)
        assert result == 10

    def test_algebraic_identities(self):
        module = compile_unoptimized(
            """
            int main(){
              int x = 5;
              int y = x + 0;
              int z = y * 1;
              return z;
            }
            """
        )
        run_mem2reg_module(module)
        run_constfold_module(module)
        run_dce_module(module)
        main = module.get_function("main")
        assert count(module, BinaryOp) == 0
        result, _ = run_module(module)
        assert result == 5

    def test_division_by_zero_not_folded(self):
        module = compile_unoptimized("int main() { return 1 / 0; }")
        run_mem2reg_module(module)
        run_constfold_module(module)  # must not crash or fold
        from repro.errors import TrapError

        with pytest.raises(TrapError):
            run_module(module)

    def test_c_style_negative_division(self):
        module = compile_unoptimized("int main() { return (0 - 7) / 2; }")
        run_standard_pipeline(module)
        result, _ = run_module(module)
        assert result == -3  # truncation toward zero, not floor


class TestDCE:
    def test_removes_unused_arithmetic(self):
        module = compile_unoptimized(
            """
            int main() {
              int unused = 3 * 14;
              return 7;
            }
            """
        )
        run_mem2reg_module(module)
        removed = run_dce_module(module)
        assert removed >= 1
        assert count(module, BinaryOp) == 0

    def test_keeps_stores_and_calls(self):
        module = compile_unoptimized(
            """
            int G = 0;
            int main() { G = 42; print_int(G); return 0; }
            """
        )
        run_mem2reg_module(module)
        run_dce_module(module)
        result, machine = run_module(module)
        assert machine.output == [42]


class TestSimplifyCFG:
    def test_removes_unreachable_code_after_return(self):
        module = compile_unoptimized(
            """
            int main() {
              return 1;
            }
            """
        )
        f = module.get_function("main")
        baseline_blocks = len(f.blocks)
        run_simplify_cfg_module(module)
        assert len(f.blocks) <= baseline_blocks

    def test_folds_constant_branches(self):
        module = compile_unoptimized(
            """
            int main() {
              if (1 < 2) { return 10; }
              return 20;
            }
            """
        )
        run_mem2reg_module(module)
        run_constfold_module(module)
        run_simplify_cfg_module(module)
        verify_module(module)
        result, _ = run_module(module)
        assert result == 10

    def test_merges_linear_chains(self):
        module = compile_unoptimized(
            """
            int main() {
              int x = 1;
              x = x + 1;
              x = x + 2;
              return x;
            }
            """
        )
        run_mem2reg_module(module)
        run_simplify_cfg_module(module)
        f = module.get_function("main")
        assert len(f.blocks) == 1


class TestGVN:
    def test_cses_duplicate_arithmetic(self):
        module = compile_unoptimized(
            """
            int main() {
              int a = 5;
              int x = a * 7 + 1;
              int y = a * 7 + 1;
              return x + y;
            }
            """
        )
        run_mem2reg_module(module)
        removed = run_gvn_module(module)
        assert removed >= 1
        result, _ = run_module(module)
        assert result == 72

    def test_commutative_cse(self):
        module = compile_unoptimized(
            """
            int main() {
              int a = 3; int b = 9;
              return (a + b) - (b + a);
            }
            """
        )
        run_mem2reg_module(module)
        run_gvn_module(module)
        run_constfold_module(module)
        result, _ = run_module(module)
        assert result == 0

    def test_load_cse_across_branch(self):
        # The conditional-max pattern: both loads of A[i] must unify.
        module = compile_unoptimized(
            """
            int A[8];
            int main() {
              int best = 0;
              int i;
              for (i = 0; i < 8; i = i + 1) {
                A[i] = i * 3;
              }
              for (i = 0; i < 8; i = i + 1) {
                if (A[i] > best) { best = A[i]; }
              }
              return best;
            }
            """
        )
        run_mem2reg_module(module)
        before = count(module, Load)
        run_gvn_module(module)
        after = count(module, Load)
        assert after < before
        result, _ = run_module(module)
        assert result == 21

    def test_load_cse_blocked_by_store(self):
        module = compile_unoptimized(
            """
            int A[2];
            int main() {
              A[0] = 1;
              int x = A[0];
              A[0] = 2;
              int y = A[0];
              return x * 10 + y;
            }
            """
        )
        run_mem2reg_module(module)
        run_gvn_module(module)
        result, _ = run_module(module)
        assert result == 12  # the second load must NOT reuse the first

    def test_load_cse_blocked_by_call(self):
        module = compile_unoptimized(
            """
            int A[2];
            void clobber() { A[0] = 7; }
            int main() {
              A[0] = 1;
              int x = A[0];
              clobber();
              int y = A[0];
              return x * 10 + y;
            }
            """
        )
        run_mem2reg_module(module)
        run_gvn_module(module)
        result, _ = run_module(module)
        assert result == 17

    def test_load_cse_blocked_by_loop_store(self):
        # The store executes on a cycle between the loads.
        module = compile_unoptimized(
            """
            int A[2];
            int main() {
              int i;
              int s = 0;
              A[0] = 5;
              for (i = 0; i < 3; i = i + 1) {
                s = s + A[0];
                A[0] = A[0] + 1;
              }
              return s;
            }
            """
        )
        run_mem2reg_module(module)
        run_gvn_module(module)
        result, _ = run_module(module)
        assert result == 5 + 6 + 7


class TestLoopSimplifyIndvars:
    def test_all_compiled_loops_simplified(self):
        module = compile_unoptimized(SAMPLE)
        run_standard_pipeline(module)
        for f in module.defined_functions():
            info = LoopInfo(f)
            for loop in info.all_loops():
                assert is_loop_simplified(loop, info.cfg)

    def test_canonical_iv_found(self):
        from repro.frontend import compile_source

        module = compile_source(SAMPLE)
        f = module.get_function("main")
        result = run_indvars(f)
        info = LoopInfo(f)
        loop = info.all_loops()[0]
        assert loop.loop_id in result.canonical_iv
        assert result.trip_counts.get(loop.loop_id) == 32

    def test_canonical_iv_inserted_when_missing(self):
        from repro.frontend import compile_source

        # loop starting at 3: i is {3,+,2}, not canonical -> civ inserted
        module = compile_source(
            """
            int A[64];
            int main() {
              int i;
              for (i = 3; i < 60; i = i + 2) { A[i] = i; }
              return 0;
            }
            """,
            optimize=True,
        )
        f = module.get_function("main")
        info = LoopInfo(f)
        loop = info.all_loops()[0]
        names = {phi.name for phi in loop.header.phis()}
        assert "civ" in names
        verify_module(module)

    def test_pipeline_preserves_behaviour(self):
        reference = compile_unoptimized(SAMPLE)
        expected = behaviour(reference)
        module = compile_unoptimized(SAMPLE)
        run_standard_pipeline(module, verify_each=True)
        assert behaviour(module) == expected

    def test_pipeline_reduces_dynamic_cost(self):
        unopt = compile_unoptimized(SAMPLE)
        _, unopt_machine = run_module(unopt)
        opt = compile_unoptimized(SAMPLE)
        run_standard_pipeline(opt)
        _, opt_machine = run_module(opt)
        assert opt_machine.cost < unopt_machine.cost


class TestForcedVerification:
    """The REPRO_VERIFY_PASSES env contract: CI sets it to verify between
    every pipeline stage, and failures name the stage that broke the IR."""

    def test_env_flag_parsing(self, monkeypatch):
        from repro.passes.pass_manager import verify_passes_forced

        monkeypatch.delenv("REPRO_VERIFY_PASSES", raising=False)
        assert not verify_passes_forced()
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "0")
        assert not verify_passes_forced()
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "")
        assert not verify_passes_forced()
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "1")
        assert verify_passes_forced()

    def test_checkpoint_attributes_the_stage(self):
        from repro.errors import VerificationError
        from repro.ir import I32, Module
        from repro.passes.pass_manager import _checkpoint

        module = Module("t")
        f = module.add_function("f", I32, [])
        f.append_block("entry")  # no terminator: invalid
        with pytest.raises(VerificationError) as excinfo:
            _checkpoint(module, "gvn")
        assert all(p.startswith("after gvn: ") for p in excinfo.value.problems)

    def test_forced_pipeline_passes_on_valid_input(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "1")
        module = compile_unoptimized(SAMPLE)
        run_standard_pipeline(module)  # must not raise
        assert verify_module(module)
