"""Static-vs-dynamic crosscheck reporter tests."""

import io

from repro.analysis.depend import (
    VERDICT_DOALL,
    VERDICT_LCD,
    VERDICT_UNKNOWN,
    LoopDependence,
)
from repro.cli import main
from repro.core.framework import Loopapalooza
from repro.reporting.crosscheck import (
    CATEGORY_ORDER,
    CrosscheckReport,
    CrosscheckRow,
    _categorize,
    crosscheck_program,
    format_crosscheck,
)

# One proven-LCD loop (the recurrence), one DOALL loop (the fill).
DEMO = """
int A[64]; int B[64];
int main() {
  int i;
  A[0] = 3;
  for (i = 1; i < 64; i = i + 1) { A[i] = A[i-1] + i; }
  for (i = 0; i < 64; i = i + 1) { B[i] = A[i] * 2; }
  return B[63];
}
"""


def demo_report():
    lp = Loopapalooza(DEMO, name="demo")
    return CrosscheckReport(crosscheck_program(lp))


class TestCategorization:
    def test_matrix(self):
        assert _categorize(VERDICT_DOALL, 0, 5) == "static-proved"
        assert _categorize(VERDICT_DOALL, 3, 5) == "unsound-static-doall"
        assert _categorize(VERDICT_LCD, 0, 5) == "static-missed"
        assert _categorize(VERDICT_LCD, 3, 5) == "confirmed-lcd"
        assert _categorize(VERDICT_UNKNOWN, 0, 5) == "dynamic-only"
        assert _categorize(VERDICT_UNKNOWN, 3, 5) == "dynamic-lcd"
        for verdict in (VERDICT_DOALL, VERDICT_LCD, VERDICT_UNKNOWN):
            assert _categorize(verdict, 0, 0) == "unobserved"

    def test_category_order_is_exhaustive(self):
        observed = {
            _categorize(v, c, n)
            for v in (VERDICT_DOALL, VERDICT_LCD, VERDICT_UNKNOWN)
            for c in (0, 1)
            for n in (0, 1)
        }
        assert observed == set(CATEGORY_ORDER)


class TestDemoProgram:
    def test_recurrence_is_confirmed_and_fill_is_proved(self):
        report = demo_report()
        by_category = {row.category: row for row in report.rows}
        assert set(by_category) == {"confirmed-lcd", "static-proved"}
        confirmed = by_category["confirmed-lcd"]
        assert confirmed.verdict == "STATIC_LCD(dist=1)"
        assert confirmed.conflicts > 0
        proved = by_category["static-proved"]
        assert proved.verdict == "STATIC_DOALL"
        assert proved.conflicts == 0
        assert proved.iterations >= 64
        assert not report.unsound

    def test_counts_tally_every_row(self):
        report = demo_report()
        counts = report.counts()
        assert sum(counts.values()) == len(report.rows) == 2
        assert counts["confirmed-lcd"] == 1
        assert counts["static-proved"] == 1

    def test_rows_are_sorted(self):
        report = demo_report()
        keys = [(row.program, row.loop_id) for row in report.rows]
        assert keys == sorted(keys)

    def test_row_to_dict(self):
        report = demo_report()
        payload = report.rows[0].to_dict()
        assert payload["program"] == "demo"
        assert payload["category"] in CATEGORY_ORDER
        assert set(payload) == {"program", "loop_id", "verdict", "conflicts",
                                "invocations", "iterations", "category"}


class TestFormatting:
    def test_clean_report_mentions_soundness(self):
        text = format_crosscheck(demo_report())
        assert text.startswith(
            "static x dynamic dependence crosscheck — 2 loops")
        assert "confirmed-lcd" in text
        assert "soundness: no statically-proved DOALL loop" in text
        # Zero categories are suppressed (except the unsound one).
        assert "dynamic-only" not in text
        assert "unsound-static-doall" in text

    def test_verbose_lists_every_loop(self):
        report = demo_report()
        text = format_crosscheck(report, verbose=True)
        for row in report.rows:
            assert row.loop_id in text

    def test_violations_block_and_exit_signal(self):
        # Fabricate an unsound row: the formatter must call it out and the
        # report must expose it so the CLI exits non-zero.
        dep = LoopDependence("f.loop", VERDICT_DOALL)
        row = CrosscheckRow("prog", "f.loop", dep, conflicts=7,
                            invocations=1, iterations=10)
        report = CrosscheckReport([row])
        assert row.category == "unsound-static-doall"
        assert [r.loop_id for r in report.unsound] == ["f.loop"]
        text = format_crosscheck(report)
        assert "SOUNDNESS VIOLATIONS" in text
        assert "7 dynamic conflict(s)" in text

    def test_output_is_deterministic(self):
        assert format_crosscheck(demo_report(), verbose=True) \
            == format_crosscheck(demo_report(), verbose=True)


class TestCLI:
    def test_crosscheck_file_exit_zero(self, tmp_path):
        path = tmp_path / "demo.c"
        path.write_text(DEMO)
        out = io.StringIO()
        assert main(["crosscheck", str(path)], out=out) == 0
        assert "crosscheck — 2 loops" in out.getvalue()

    def test_crosscheck_file_verbose_loops(self, tmp_path):
        path = tmp_path / "demo.c"
        path.write_text(DEMO)
        out = io.StringIO()
        assert main(["crosscheck", "--loops", str(path)], out=out) == 0
        assert "main.for.cond" in out.getvalue()

    def test_crosscheck_one_suite_is_sound(self):
        out = io.StringIO()
        assert main(["crosscheck", "--suite", "eembc"], out=out) == 0
        assert "soundness: no statically-proved DOALL loop" in out.getvalue()
