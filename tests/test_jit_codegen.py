"""The block-template JIT backend: selection, parity, fuel accounting,
the persistent code cache, and the source-dump escape hatch.

The exhaustive closure-vs-JIT comparison over every bundled benchmark
lives in test_differential_backends.py; these tests pin the individual
contracts with small targeted programs.
"""

import pytest

from repro.core.framework import Loopapalooza
from repro.errors import FuelExhausted, InterpError
from repro.frontend.codegen import compile_source
from repro.interp.interpreter import Interpreter, backend_from_env

TIGHT_LOOP = """
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 25; i = i + 1) { s = s + i; }
  return s;
}
"""

MIXED = """
int N = 16;
float A[16];

float scale(float x) { return x * 2.5 + sqrt(x); }

int main() {
  int i; float acc;
  acc = 0.0;
  for (i = 0; i < N; i = i + 1) { A[i] = (float)i / 3.0; }
  for (i = 0; i < N; i = i + 1) { acc = acc + scale(A[i]); }
  print_float(acc);
  return (int)acc;
}
"""


def _run(source, backend, fuel=200_000_000):
    machine = Interpreter(
        compile_source(source), fuel=fuel, backend=backend
    )
    result = machine.run("main")
    return result, machine.cost, list(machine.output)


class TestBackendSelection:
    def test_default_is_vec(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        monkeypatch.delenv("REPRO_NO_VEC", raising=False)
        monkeypatch.delenv("REPRO_PAR", raising=False)
        assert backend_from_env() == "vec"

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_no_jit_env_selects_closure(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NO_JIT", value)
        assert backend_from_env() == "closure"

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_no_vec_env_selects_scalar_jit(self, monkeypatch, value):
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        monkeypatch.setenv("REPRO_NO_VEC", value)
        assert backend_from_env() == "jit"

    def test_no_jit_outranks_no_vec(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        monkeypatch.setenv("REPRO_NO_VEC", "1")
        assert backend_from_env() == "closure"

    def test_falsy_env_values_keep_vec(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAR", raising=False)
        for value in ("", "0", "false"):
            monkeypatch.setenv("REPRO_NO_JIT", value)
            monkeypatch.setenv("REPRO_NO_VEC", value)
            assert backend_from_env() == "vec"

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        machine = Interpreter(compile_source(TIGHT_LOOP), backend="jit")
        assert machine.backend == "jit"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InterpError, match="backend"):
            Interpreter(compile_source(TIGHT_LOOP), backend="bytecode")


class TestBackendParity:
    def test_uninstrumented_runs_match(self):
        assert _run(MIXED, "closure") == _run(MIXED, "jit")

    def test_profiles_serialize_identically(self):
        import json

        from repro.runtime.serialize import profile_to_dict

        texts = []
        for backend in ("closure", "jit"):
            lp = Loopapalooza(MIXED, name="mixed", backend=backend)
            texts.append(
                json.dumps(profile_to_dict(lp.profile()), sort_keys=True)
            )
        assert texts[0] == texts[1]


class TestFuelAccounting:
    """Both backends charge block costs identically: the run that exactly
    fits its budget completes on each, and one unit less trips both."""

    def _exact_cost(self, source):
        return _run(source, "closure")[1]

    @pytest.mark.parametrize("source", [TIGHT_LOOP, MIXED])
    def test_exact_fuel_completes_on_both(self, source):
        cost = self._exact_cost(source)
        for backend in ("closure", "jit"):
            result, spent, _ = _run(source, backend, fuel=cost)
            assert spent == cost

    @pytest.mark.parametrize("source", [TIGHT_LOOP, MIXED])
    def test_one_less_exhausts_on_both(self, source):
        cost = self._exact_cost(source)
        for backend in ("closure", "jit"):
            with pytest.raises(FuelExhausted):
                _run(source, backend, fuel=cost - 1)

    def test_instrumented_budget_matches_uninstrumented(self):
        cost = self._exact_cost(TIGHT_LOOP)
        lp = Loopapalooza(TIGHT_LOOP, fuel=cost, backend="jit")
        assert lp.profile().total_cost == cost
        with pytest.raises(FuelExhausted):
            Loopapalooza(TIGHT_LOOP, fuel=cost - 1, backend="jit").profile()


class TestCodeCache:
    def _function(self):
        return compile_source(TIGHT_LOOP).get_function("main")

    def test_cache_key_is_stable_across_compiles(self):
        from repro.interp.codegen import jit_cache_key

        key_a = jit_cache_key(
            compile_source(TIGHT_LOOP).get_function("main"), None, False
        )
        key_b = jit_cache_key(
            compile_source(TIGHT_LOOP).get_function("main"), None, False
        )
        assert key_a == key_b

    def test_variants_get_distinct_keys(self):
        from repro.interp.codegen import jit_cache_key

        function = self._function()
        assert jit_cache_key(function, None, False) != jit_cache_key(
            function, None, True
        )

    def test_pipeline_fingerprint_distinguishes_identical_ir(self):
        """Stale-hit regression: the transforms leave TIGHT_LOOP alone, so
        both pipelines print byte-identical IR — yet a cached artifact from
        one pipeline configuration must never satisfy the other."""
        from repro.interp.codegen import jit_cache_key
        from repro.ir.printer import print_function

        plain = compile_source(TIGHT_LOOP, transform=False)
        transformed = compile_source(TIGHT_LOOP, transform=True)
        assert print_function(plain.get_function("main")) == \
            print_function(transformed.get_function("main"))
        assert jit_cache_key(plain.get_function("main"), None, False) != \
            jit_cache_key(transformed.get_function("main"), None, False)

    def test_unpipelined_function_keys_stably(self):
        from repro.interp.codegen import jit_cache_key
        from repro.ir import Module

        function = self._function()
        bare = Module("bare")
        assert not hasattr(bare, "pipeline_fingerprint") \
            or bare.pipeline_fingerprint is None
        key_a = jit_cache_key(function, None, False)
        key_b = jit_cache_key(function, None, False)
        assert key_a == key_b

    def test_round_trip_through_disk(self, tmp_path, monkeypatch):
        from repro.interp import codegen
        from repro.runtime.profile_store import CodeCache

        monkeypatch.setattr(codegen, "_CODE_MEMO", {})
        cache = CodeCache(tmp_path / "code")
        entry = codegen.jit_entry(
            self._function(), None, False, code_cache=cache
        )
        assert cache.stats.misses == 1 and cache.stats.stores == 1

        monkeypatch.setattr(codegen, "_CODE_MEMO", {})
        again = codegen.jit_entry(
            self._function(), None, False, code_cache=cache
        )
        assert cache.stats.hits == 1

        machine = Interpreter(compile_source(TIGHT_LOOP), backend="closure")
        expected = machine.run("main")
        fresh = Interpreter(compile_source(TIGHT_LOOP), backend="closure")
        assert again(fresh, ()) == expected

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, monkeypatch):
        from repro.interp import codegen
        from repro.runtime.profile_store import CodeCache

        monkeypatch.setattr(codegen, "_CODE_MEMO", {})
        cache = CodeCache(tmp_path / "code")
        function = self._function()
        codegen.jit_entry(function, None, False, code_cache=cache)
        for path in cache.entries():
            path.write_text("{ not json")
        monkeypatch.setattr(codegen, "_CODE_MEMO", {})
        cache = CodeCache(tmp_path / "code")
        codegen.jit_entry(function, None, False, code_cache=cache)
        assert cache.stats.corrupt == 1


class TestDumpAndFallback:
    def test_jit_dump_writes_sources(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_DUMP", str(tmp_path))
        _run(MIXED, "jit")
        dumped = sorted(p.name for p in tmp_path.glob("*.py"))
        assert any(name.startswith("main.plain.") for name in dumped)
        assert any(name.startswith("scale.plain.") for name in dumped)

    def test_unsupported_function_falls_back_to_closure(self):
        from repro.ir import F64, IRBuilder, Module
        from repro.ir.values import ConstantFloat

        module = Module("nanny")
        function = module.add_function("f", F64, [])
        builder = IRBuilder(function.append_block("entry"))
        builder.ret(ConstantFloat(float("nan")))
        machine = Interpreter(module, backend="jit")
        result = machine.run("f")
        assert result != result  # NaN round-tripped through the closure path
        assert "f" in machine._jit_failed
