"""Call-graph and purity analysis tests (the fn-flag classifier)."""

from repro.analysis import CallGraph, FunctionClass, PurityAnalysis
from repro.frontend import compile_source


def classes_of(source):
    module = compile_source(source)
    analysis = PurityAnalysis(module)
    return module, analysis


class TestCallGraph:
    def test_edges(self):
        module, _ = classes_of(
            """
            int leaf(int x) { return x + 1; }
            int mid(int x) { return leaf(x) * 2; }
            int main() { return mid(3); }
            """
        )
        cg = CallGraph(module)
        main = module.get_function("main")
        mid = module.get_function("mid")
        leaf = module.get_function("leaf")
        assert mid in cg.callees_of(main)
        assert leaf in cg.callees_of(mid)
        assert main in cg.callers_of(mid)
        assert leaf in cg.transitive_callees(main)

    def test_sccs_bottom_up(self):
        module, _ = classes_of(
            """
            int leaf(int x) { return x + 1; }
            int main() { return leaf(3); }
            """
        )
        cg = CallGraph(module)
        sccs = cg.sccs_bottom_up()
        flat = [f.name for component in sccs for f in component]
        assert flat.index("leaf") < flat.index("main")

    def test_recursive_scc(self):
        module, _ = classes_of(
            """
            int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
            int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
            int main() { return even(6); }
            """
        )
        cg = CallGraph(module)
        sccs = cg.sccs_bottom_up()
        mutual = [c for c in sccs if len(c) == 2]
        assert len(mutual) == 1
        assert {f.name for f in mutual[0]} == {"odd", "even"}


class TestPurity:
    def test_arithmetic_function_is_pure(self):
        module, analysis = classes_of(
            """
            int f(int x) { return x * x + 1; }
            int main() { return f(2); }
            """
        )
        assert analysis.class_of(module.get_function("f")) is FunctionClass.PURE

    def test_global_reader_is_pure(self):
        module, analysis = classes_of(
            """
            int G = 5;
            int f(int x) { return x + G; }
            int main() { return f(2); }
            """
        )
        assert analysis.is_pure(module.get_function("f"))

    def test_global_writer_is_instrumented(self):
        module, analysis = classes_of(
            """
            int G = 5;
            int f(int x) { G = x; return x; }
            int main() { return f(2); }
            """
        )
        assert analysis.class_of(module.get_function("f")) is FunctionClass.INSTRUMENTED

    def test_pointer_writer_is_instrumented(self):
        module, analysis = classes_of(
            """
            int A[4];
            void f(int* p, int v) { p[0] = v; }
            int main() { f(A, 3); return A[0]; }
            """
        )
        assert analysis.class_of(module.get_function("f")) is FunctionClass.INSTRUMENTED

    def test_purity_is_transitive(self):
        module, analysis = classes_of(
            """
            int G = 0;
            int dirty(int x) { G = x; return x; }
            int wrapper(int x) { return dirty(x) + 1; }
            int clean(int x) { return x + 1; }
            int clean_wrapper(int x) { return clean(x) * 2; }
            int main() { return wrapper(1) + clean_wrapper(2); }
            """
        )
        assert analysis.class_of(module.get_function("wrapper")) is FunctionClass.INSTRUMENTED
        assert analysis.is_pure(module.get_function("clean_wrapper"))

    def test_recursive_pure(self):
        module, analysis = classes_of(
            """
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(5); }
            """
        )
        assert analysis.is_pure(module.get_function("fib"))

    def test_unsafe_intrinsic_call_taints(self):
        module, analysis = classes_of(
            """
            int f(int x) { return x + rand(); }
            int main() { return f(2); }
            """
        )
        assert analysis.class_of(module.get_function("f")) is not FunctionClass.PURE

    def test_pure_intrinsic_call_stays_pure(self):
        module, analysis = classes_of(
            """
            float f(float x) { return sqrt(x) + 1.0; }
            int main() { return (int)f(4.0); }
            """
        )
        assert analysis.is_pure(module.get_function("f"))

    def test_intrinsic_classes(self):
        module, analysis = classes_of("int main() { return 0; }")
        assert analysis.class_of(module.get_function("sqrt")) is FunctionClass.PURE
        assert analysis.class_of(module.get_function("hash_i32")) is FunctionClass.PURE
        assert analysis.class_of(module.get_function("rand")) is FunctionClass.UNSAFE
        assert analysis.class_of(module.get_function("print_int")) is FunctionClass.UNSAFE
        assert (
            analysis.class_of(module.get_function("memcpy_i32"))
            is FunctionClass.THREAD_SAFE
        )

    def test_local_array_mutation_is_pure(self):
        # Writing to a non-escaping local array is invisible outside.
        module, analysis = classes_of(
            """
            int f(int x) {
              int tmp[4];
              tmp[0] = x;
              tmp[1] = x * 2;
              return tmp[0] + tmp[1];
            }
            int main() { return f(3); }
            """
        )
        assert analysis.is_pure(module.get_function("f"))

    def test_escaping_local_is_not_pure(self):
        # Passing the local's address to a writer makes writes observable.
        module, analysis = classes_of(
            """
            void store_it(int* p, int v) { p[0] = v; }
            int f(int x) {
              int tmp[4];
              store_it(tmp, x);
              return tmp[0];
            }
            int main() { return f(3); }
            """
        )
        assert analysis.class_of(module.get_function("f")) is FunctionClass.INSTRUMENTED
