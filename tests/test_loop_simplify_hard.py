"""Loop-simplify on hand-built non-canonical CFGs.

The MiniC frontend always emits clean loop shapes, so these tests build the
nasty ones directly in IR: multiple back edges, headers with several
out-of-loop predecessors, shared (non-dedicated) exit blocks — and check
that loopsimplify normalizes them without changing behaviour.
"""

from repro.analysis import CFG, LoopInfo
from repro.interp.interpreter import run_module
from repro.ir import I32, IRBuilder, Module, Phi, verify_module
from repro.ir.values import ConstantInt
from repro.passes import is_loop_simplified, run_loop_simplify


def run_f(module):
    f = module.get_function("f")
    args = [3] * len(f.arguments)
    result, machine = run_module(module, function_name="f", args=args,
                                 fuel=1_000_000)
    return result


def assert_simplified_and_equivalent(module):
    reference = run_f(module)
    for function in module.defined_functions():
        run_loop_simplify(function)
    verify_module(module)
    for function in module.defined_functions():
        info = LoopInfo(function)
        for loop in info.all_loops():
            assert is_loop_simplified(loop, info.cfg), loop.loop_id
    assert run_f(module) == reference


def build_multi_latch():
    """A loop with TWO back edges (continue-like shape built by hand):

        entry -> header <- (odd_path, even_path) ; header -> exit
    """
    module = Module("multilatch")
    f = module.add_function("f", I32, [])
    entry = f.append_block("entry")
    header = f.append_block("header")
    odd = f.append_block("odd")
    even = f.append_block("even")
    exit_block = f.append_block("exit")

    b = IRBuilder(entry)
    b.br(header)

    b.position_at_end(header)
    iv = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    done = b.icmp("sge", iv, b.const_int(20), "done")
    parity_block = f.append_block("parity")
    b.condbr(done, exit_block, parity_block)

    b.position_at_end(parity_block)
    bit = b.and_(iv, b.const_int(1), "bit")
    is_odd = b.icmp("eq", bit, b.const_int(1), "isodd")
    b.condbr(is_odd, odd, even)

    b.position_at_end(odd)
    acc_odd = b.add(acc, iv, "acc_odd")
    iv_odd = b.add(iv, b.const_int(1), "iv_odd")
    b.br(header)

    b.position_at_end(even)
    acc_even = b.add(acc, b.const_int(100), "acc_even")
    iv_even = b.add(iv, b.const_int(2), "iv_even")
    b.br(header)

    iv.add_incoming(ConstantInt(I32, 0), entry)
    iv.add_incoming(iv_odd, odd)
    iv.add_incoming(iv_even, even)
    acc.add_incoming(ConstantInt(I32, 0), entry)
    acc.add_incoming(acc_odd, odd)
    acc.add_incoming(acc_even, even)

    b.position_at_end(exit_block)
    b.ret(acc)
    verify_module(module)
    return module


def build_multi_entry_preheader():
    """A header with two distinct out-of-loop predecessors carrying
    different initial values (requires a merged preheader phi)."""
    module = Module("multientry")
    f = module.add_function("f", I32, [I32])
    entry = f.append_block("entry")
    init_a = f.append_block("init_a")
    init_b = f.append_block("init_b")
    header = f.append_block("header")
    body = f.append_block("body")
    exit_block = f.append_block("exit")

    b = IRBuilder(entry)
    flag = b.icmp("sgt", f.arguments[0], b.const_int(0), "flag")
    b.condbr(flag, init_a, init_b)
    IRBuilder(init_a).br(header)
    IRBuilder(init_b).br(header)

    b.position_at_end(header)
    iv = b.phi(I32, "i")
    limit = b.icmp("slt", iv, b.const_int(50), "cont")
    b.condbr(limit, body, exit_block)

    b.position_at_end(body)
    nxt = b.add(iv, b.const_int(7), "next")
    b.br(header)

    iv.add_incoming(ConstantInt(I32, 5), init_a)
    iv.add_incoming(ConstantInt(I32, 11), init_b)
    iv.add_incoming(nxt, body)

    b.position_at_end(exit_block)
    b.ret(iv)
    verify_module(module)
    return module


def build_shared_exit():
    """Two sibling loops branching to one shared exit block (not dedicated:
    the exit also has a straight-line predecessor)."""
    module = Module("sharedexit")
    f = module.add_function("f", I32, [])
    entry = f.append_block("entry")
    h1 = f.append_block("h1")
    b1 = f.append_block("b1")
    mid = f.append_block("mid")
    h2 = f.append_block("h2")
    b2 = f.append_block("b2")
    out = f.append_block("out")

    b = IRBuilder(entry)
    b.br(h1)

    b.position_at_end(h1)
    i1 = b.phi(I32, "i1")
    c1 = b.icmp("slt", i1, b.const_int(10), "c1")
    b.condbr(c1, b1, out)          # loop 1 exits straight into `out`
    b.position_at_end(b1)
    n1 = b.add(i1, b.const_int(1), "n1")
    b.br(h1)
    i1.add_incoming(ConstantInt(I32, 0), entry)
    i1.add_incoming(n1, b1)

    # `mid` also jumps to `out`, making it non-dedicated... but mid is dead
    # unless reached; route loop 2 through it instead:
    b.position_at_end(mid)
    b.br(h2)

    b.position_at_end(h2)
    i2 = b.phi(I32, "i2")
    c2 = b.icmp("slt", i2, b.const_int(5), "c2")
    b.condbr(c2, b2, out)          # loop 2 also exits into `out`
    b.position_at_end(b2)
    n2 = b.add(i2, b.const_int(1), "n2")
    b.br(h2)
    i2.add_incoming(ConstantInt(I32, 0), mid)
    i2.add_incoming(n2, b2)

    b.position_at_end(out)
    merged = Phi(I32, "m")
    out.insert_phi(merged)
    merged.add_incoming(i1, h1)
    merged.add_incoming(i2, h2)
    b.position_at_end(out)
    b.ret(merged)

    # connect loop1's exit to mid instead so both loops run:
    h1.terminator.replace_successor(out, mid)
    merged.remove_incoming_for_block(h1)
    merged.add_incoming(ConstantInt(I32, 99), mid)
    # mid now has two successors? No: mid branches to h2 only; the edge
    # h1->mid carries loop1's exit. merged's incoming from mid is wrong —
    # rebuild: out's predecessors are h2 only now... keep it simple:
    merged.remove_incoming_for_block(mid)
    verify_module(module)
    return module


class TestHardShapes:
    def test_multi_latch_merged(self):
        module = build_multi_latch()
        f = module.get_function("f")
        info = LoopInfo(f)
        assert info.all_loops()[0].single_latch() is None  # really two latches
        assert_simplified_and_equivalent(module)
        info = LoopInfo(f)
        latch = info.all_loops()[0].single_latch()
        assert latch is not None
        assert latch.name.endswith(".latch")

    def test_multi_entry_gets_preheader_phi(self):
        module = build_multi_entry_preheader()
        f = module.get_function("f")
        info = LoopInfo(f)
        assert info.all_loops()[0].preheader(info.cfg) is None
        assert_simplified_and_equivalent(module)
        info = LoopInfo(f)
        preheader = info.all_loops()[0].preheader(info.cfg)
        assert preheader is not None
        assert any(True for _ in preheader.phis()), (
            "distinct initial values need a merged phi in the preheader"
        )

    def test_shared_exit_dedicated(self):
        module = build_shared_exit()
        assert_simplified_and_equivalent(module)

    def test_simplify_is_idempotent(self):
        module = build_multi_latch()
        f = module.get_function("f")
        first = run_loop_simplify(f)
        second = run_loop_simplify(f)
        assert first > 0
        assert second == 0

    def test_profiles_work_on_simplified_hard_shapes(self):
        """The whole pipeline (instrument + profile + evaluate) must cope
        with a formerly-multi-latch loop."""
        module = build_multi_latch()
        for function in module.defined_functions():
            run_loop_simplify(function)
        from repro.core import ModuleStaticInfo, build_instrumentation
        from repro.interp.interpreter import Interpreter
        from repro.runtime.recorder import ProfilingRuntime

        # wrap f as main by adding a trivial main calling it
        main = module.add_function("main", I32, [])
        entry = main.append_block("entry")
        b = IRBuilder(entry)
        result = b.call(module.get_function("f"), [], "r")
        b.ret(result)
        verify_module(module)

        static = ModuleStaticInfo(module)
        plans = build_instrumentation(static)
        runtime = ProfilingRuntime("hard")
        machine = Interpreter(module, runtime, plans)
        runtime.attach(machine)
        value = machine.run("main")
        profile = runtime.finish(machine.cost, value)
        assert profile.top_level
        inv = profile.top_level[0]
        assert inv.num_iterations > 5
