"""The seeded MiniC generator: every program it emits must be a valid,
trap-free member of the language the rest of the pipeline handles.

Three layers: hypothesis properties over the shared ``minic_programs``
strategy (parse, sema, verifier-clean IR through the full pipeline),
deterministic byte-reproducibility of the ``(seed, profile)`` mapping,
and grammar-coverage checks that each profile actually emits the
constructs it is biased toward.
"""

import pytest
from hypothesis import given, settings

from helpers import minic_programs
from repro.frontend.codegen import compile_source
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.fuzz.genprog import PROFILES, generate_program
from repro.interp.interpreter import run_module


@given(minic_programs())
@settings(max_examples=20)
def test_generated_programs_compile_verifier_clean(program):
    tree = parse(program.source)          # always parses
    analyze(tree)                         # always passes sema
    # Verifier-clean after every pass stage, transform pipeline off and on.
    for transform in (False, True):
        compile_source(program.source, module_name=program.name,
                       verify_each=True, transform=transform)


@given(minic_programs(max_seed=2_000))
@settings(max_examples=10)
def test_generated_programs_run_trap_free(program):
    module = compile_source(program.source)
    result, machine = run_module(module, fuel=20_000_000)
    assert result == program_result_range(result)
    assert machine.cost < 1_000_000, "generated program exceeds work bound"
    assert len(machine.output) == 1, "exactly one checksum print"


def program_result_range(result):
    # The checksum epilogue masks with 65535, so results are 16-bit.
    assert 0 <= result <= 65535
    return result


def test_generation_is_byte_reproducible():
    for profile in sorted(PROFILES):
        for seed in (0, 1, 7, 99, 12345):
            first = generate_program(seed, profile)
            second = generate_program(seed, profile)
            assert first.source == second.source
            assert first.name == second.name == f"fuzz/{profile}-s{seed}"


def test_profiles_are_distinct_program_streams():
    # The profile name salts the RNG: the same seed must not collapse to
    # the same program across profiles.
    sources = {profile: generate_program(3, profile).source
               for profile in sorted(PROFILES)}
    assert len(set(sources.values())) == len(sources)


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        generate_program(0, "nonsense")


def _sources(profile, count=40):
    return [generate_program(seed, profile).source for seed in range(count)]


def test_affine_profile_covers_core_constructs():
    joined = "\n".join(_sources("affine"))
    assert "for (" in joined
    assert "while (" in joined and "continue;" in joined  # multi-latch
    assert "hash_i32" in joined        # non-affine hashed subscript
    assert " - " in joined             # loop-carried distance subscript
    assert "rand()" not in joined      # no unsafe calls in affine profile
    assert "memset_i32" not in joined


def test_calls_profile_covers_call_classes():
    joined = "\n".join(_sources("calls"))
    assert "memset_i32" in joined or "memcpy_i32" in joined  # memory effects
    assert "rand()" in joined                                # hidden state
    assert "hash_i32" in joined or "noise_f64" in joined     # pure


def test_transforms_profile_baits_the_passes():
    fired = 0
    for source in _sources("transforms", count=15):
        module = compile_source(source, transform=True)
        if module.transform_log:
            fired += 1
    assert fired >= 8, "transforms profile no longer triggers the " \
        "structural passes often enough to test them"


def test_mixed_profile_emits_nested_loops():
    joined = "\n".join(_sources("mixed"))
    assert "j" in joined
    assert any("for (j" in source for source in _sources("mixed"))


@pytest.mark.slow
@given(minic_programs())
@settings(max_examples=150)
def test_generated_programs_compile_verifier_clean_wide(program):
    """The wide sweep the fuzz-smoke CI job runs (-m slow)."""
    for transform in (False, True):
        compile_source(program.source, module_name=program.name,
                       verify_each=True, transform=transform)
    module = compile_source(program.source)
    result, machine = run_module(module, fuel=20_000_000)
    assert 0 <= result <= 65535
    assert machine.cost < 1_000_000
