"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (
    F64,
    I1,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    VoidType,
    parse_type,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32

    def test_distinct_widths_are_distinct(self):
        assert IntType(8) is not IntType(16)

    def test_float_singleton(self):
        assert FloatType() is F64

    def test_void_singleton(self):
        assert VoidType() is VOID

    def test_pointer_interning(self):
        assert PointerType(I32) is PointerType(I32)
        assert PointerType(I32) is not PointerType(F64)

    def test_array_interning(self):
        assert ArrayType(I32, 8) is ArrayType(I32, 8)
        assert ArrayType(I32, 8) is not ArrayType(I32, 9)

    def test_function_type_interning(self):
        assert FunctionType(I32, [F64]) is FunctionType(I32, [F64])

    def test_equality_matches_identity(self):
        assert I32 == IntType(32)
        assert I32 != I64


class TestPredicates:
    def test_scalar_classification(self):
        assert I32.is_scalar and F64.is_scalar and PointerType(I32).is_scalar
        assert not ArrayType(I32, 4).is_scalar

    def test_kind_flags(self):
        assert I32.is_integer and not I32.is_float
        assert F64.is_float and not F64.is_pointer
        assert PointerType(F64).is_pointer
        assert ArrayType(F64, 2).is_array
        assert VOID.is_void


class TestSizes:
    def test_scalar_sizes(self):
        assert I32.size_in_slots() == 1
        assert F64.size_in_slots() == 1
        assert PointerType(I32).size_in_slots() == 1

    def test_array_sizes(self):
        assert ArrayType(I32, 10).size_in_slots() == 10
        assert ArrayType(ArrayType(F64, 4), 3).size_in_slots() == 12

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.size_in_slots()


class TestIntSemantics:
    def test_wrap_positive_overflow(self):
        assert I32.wrap(2**31) == -(2**31)

    def test_wrap_negative(self):
        assert I32.wrap(-1) == -1

    def test_wrap_identity_in_range(self):
        assert I32.wrap(12345) == 12345

    def test_bounds(self):
        assert I32.min_value() == -(2**31)
        assert I32.max_value() == 2**31 - 1
        assert I1.min_value() == 0 and I1.max_value() == 1


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_array_of_void_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(VOID, 4)

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(I32, 0)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_array_return_type_rejected(self):
        with pytest.raises(ValueError):
            FunctionType(ArrayType(I32, 2), [])

    def test_array_param_rejected(self):
        with pytest.raises(ValueError):
            FunctionType(I32, [ArrayType(I32, 2)])


class TestParseType:
    @pytest.mark.parametrize("text,expected", [
        ("i32", I32),
        ("i1", I1),
        ("i64", I64),
        ("f64", F64),
        ("void", VOID),
        ("i32*", PointerType(I32)),
        ("f64**", PointerType(PointerType(F64))),
        ("[8 x i32]", ArrayType(I32, 8)),
        ("[2 x [3 x f64]]", ArrayType(ArrayType(F64, 3), 2)),
        ("[4 x i32]*", PointerType(ArrayType(I32, 4))),
    ])
    def test_parse(self, text, expected):
        assert parse_type(text) is expected

    def test_repr_round_trips(self):
        for type_ in (I32, F64, PointerType(I32), ArrayType(F64, 7),
                      PointerType(ArrayType(I32, 3))):
            assert parse_type(repr(type_)) is type_

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_type("banana")
