"""Reduction recurrence detection tests."""

import pytest

from repro.analysis import LoopInfo, detect_reduction, loop_reductions
from repro.frontend import compile_source


def reductions_of(source):
    module = compile_source(source)
    f = module.get_function("main")
    info = LoopInfo(f)
    loop = [l for l in info.all_loops() if l.depth == 1][0]
    return {d.phi.name: d for d in loop_reductions(loop)}


FLOAT_TEMPLATE = """
float OUT = 0.0;
float X[64];
int main() {{
  int i;
  float acc = {init};
  for (i = 0; i < 64; i = i + 1) {{
    {body}
  }}
  OUT = acc;
  return 0;
}}
"""

INT_TEMPLATE = """
int OUT = 0;
int X[64];
int main() {{
  int i;
  int acc = {init};
  for (i = 0; i < 64; i = i + 1) {{
    {body}
  }}
  OUT = acc;
  return 0;
}}
"""


class TestKinds:
    @pytest.mark.parametrize("body,kind", [
        ("acc = acc + X[i];", "fadd"),
        ("acc = acc * (1.0 + X[i]);", "fmul"),
        ("acc = X[i] + acc;", "fadd"),
    ])
    def test_float_reductions(self, body, kind):
        found = reductions_of(FLOAT_TEMPLATE.format(init="0.0", body=body))
        assert found["acc"].kind == kind
        assert found["acc"].is_float

    @pytest.mark.parametrize("body,kind", [
        ("acc = acc + X[i];", "add"),
        ("acc = acc * X[i];", "mul"),
        ("acc = acc ^ X[i];", "xor"),
        ("acc = acc | X[i];", "or"),
        ("acc = acc & X[i];", "and"),
    ])
    def test_int_reductions(self, body, kind):
        found = reductions_of(INT_TEMPLATE.format(init="0", body=body))
        assert found["acc"].kind == kind
        assert found["acc"].is_associative or found["acc"].is_float

    def test_conditional_reduction(self):
        found = reductions_of(FLOAT_TEMPLATE.format(
            init="0.0", body="if (X[i] > 0.0) { acc = acc + X[i]; }"
        ))
        assert found["acc"].kind == "fadd"

    def test_conditional_max_via_if(self):
        found = reductions_of(INT_TEMPLATE.format(
            init="0", body="if (X[i] > acc) { acc = X[i]; }"
        ))
        assert found["acc"].kind == "smax"

    def test_conditional_float_min(self):
        found = reductions_of(FLOAT_TEMPLATE.format(
            init="1000.0", body="if (X[i] < acc) { acc = X[i]; }"
        ))
        assert found["acc"].kind == "fmax"  # generic min/max class

    def test_chained_updates(self):
        found = reductions_of(FLOAT_TEMPLATE.format(
            init="0.0", body="acc = acc + X[i];\n    acc = acc + 1.0;"
        ))
        assert found["acc"].kind == "fadd"
        assert len(found["acc"].chain) == 2


class TestRejections:
    def test_value_used_in_loop_not_reduction(self):
        # acc feeds other computation inside the loop: decoupling would be
        # unsound, so it must NOT be classified as a reduction.
        found = reductions_of(FLOAT_TEMPLATE.format(
            init="0.0", body="X[i] = acc * 0.5;\n    acc = acc + 1.5;"
        ))
        assert "acc" not in found

    def test_mixed_operators_not_reduction(self):
        found = reductions_of(FLOAT_TEMPLATE.format(
            init="1.0", body="acc = acc + X[i];\n    acc = acc * 2.0;"
        ))
        assert "acc" not in found

    def test_non_reduction_op_rejected(self):
        found = reductions_of(INT_TEMPLATE.format(
            init="0", body="acc = acc / 2 + X[i];"
        ))
        assert "acc" not in found

    def test_reset_kills_reduction(self):
        found = reductions_of(INT_TEMPLATE.format(
            init="0", body="acc = acc + X[i];\n    if (acc > 100) { acc = 0; }"
        ))
        assert "acc" not in found

    def test_invariant_passthrough_not_reduction(self):
        # acc never changes: SCEV handles it; not a reduction.
        module = compile_source(INT_TEMPLATE.format(
            init="5", body="X[i] = acc;"
        ))
        f = module.get_function("main")
        info = LoopInfo(f)
        for loop in info.all_loops():
            for phi in loop.header.phis():
                descriptor = detect_reduction(phi, loop)
                assert descriptor is None or phi.name != "acc"

    def test_iv_not_double_reported_as_nonreduction(self):
        # An IV also matches the add pattern; classification priority lives
        # in static_info, but detect_reduction on an unused-IV is harmless.
        found = reductions_of(INT_TEMPLATE.format(
            init="0", body="X[i] = i; acc = acc + 2;"
        ))
        assert found["acc"].kind == "add"
