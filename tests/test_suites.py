"""Benchmark-suite integrity tests: every synthetic program compiles,
verifies, runs deterministically, and exhibits its designed traits."""

import pytest

from repro.bench import (
    ALL_SUITES,
    all_programs,
    find_program,
    suite_programs,
)
from repro.bench.program import (
    TRAIT_CALLS,
    TRAIT_DOALL,
    TRAIT_PDOALL_FRIENDLY,
    TRAIT_PREDICTABLE_LCD,
    TRAIT_UNSAFE_CALLS,
)
from repro.core import BEST_HELIX, BEST_PDOALL, LPConfig
from repro.core.static_info import CALL_UNSAFE
from repro.ir import verify_module

ALL = all_programs()


class TestRegistry:
    def test_five_suites(self):
        assert set(ALL_SUITES) == {
            "specint2000", "specint2006", "eembc", "specfp2000", "specfp2006",
        }

    def test_suite_sizes(self):
        assert len(suite_programs("specint2000")) == 12
        assert len(suite_programs("specint2006")) == 12
        assert len(suite_programs("eembc")) == 8
        assert len(suite_programs("specfp2000")) == 8
        assert len(suite_programs("specfp2006")) == 8
        assert len(ALL) == 48

    def test_names_unique(self):
        names = [p.full_name for p in ALL]
        assert len(set(names)) == len(names)

    def test_find_program(self):
        program = find_program("specint2000/gzip_like")
        assert program.suite == "specint2000"
        from repro.errors import FrameworkError

        with pytest.raises(FrameworkError):
            find_program("specint2000/nope")
        with pytest.raises(FrameworkError):
            find_program("badsuite/x")

    def test_descriptions_present(self):
        for program in ALL:
            assert program.description
            assert program.traits


@pytest.mark.parametrize("program", ALL, ids=lambda p: p.full_name)
class TestEveryProgram:
    def test_compiles_runs_and_verifies(self, program, runner):
        lp = runner.instance(program)
        verify_module(lp.module)
        profile = lp.profile()
        assert profile.total_cost > 10_000, "workload too small to be meaningful"
        assert profile.result is not None
        assert len(lp.static_info.loops) >= 2

    def test_deterministic(self, program, runner):
        lp = runner.instance(program)
        result, cost, _ = lp.run_uninstrumented()
        assert result == lp.profile().result
        assert cost == lp.profile().total_cost


class TestTraits:
    def test_doall_trait_means_parallel_somewhere(self, runner):
        config = LPConfig("pdoall", 1, 2, 2)
        for program in ALL:
            if TRAIT_DOALL in program.traits:
                result = runner.evaluate(program, config)
                assert any(
                    s.is_parallel for s in result.loops.values()
                ), f"{program.full_name} claims DOALL-friendly loops"

    def test_pdoall_friendly_trait_holds(self, runner):
        for program in ALL:
            if TRAIT_PDOALL_FRIENDLY in program.traits:
                pd = runner.evaluate(program, BEST_PDOALL).speedup
                hx = runner.evaluate(program, BEST_HELIX).speedup
                assert pd > hx, (
                    f"{program.full_name} should prefer PDOALL "
                    f"(pd={pd:.2f}, hx={hx:.2f})"
                )

    def test_unsafe_calls_trait_matches_static_info(self, runner):
        for program in ALL:
            lp = runner.instance(program)
            has_unsafe_loop = any(
                CALL_UNSAFE in s.call_classes
                for s in lp.static_info.loops.values()
            )
            if TRAIT_UNSAFE_CALLS in program.traits:
                assert has_unsafe_loop, program.full_name

    def test_calls_trait_matches_static_info(self, runner):
        for program in ALL:
            if TRAIT_CALLS in program.traits:
                lp = runner.instance(program)
                assert any(
                    s.has_any_call for s in lp.static_info.loops.values()
                ), program.full_name

    def test_predictable_lcd_trait_gains_from_dep2(self, runner):
        dep0 = LPConfig("pdoall", 1, 0, 2)
        dep2 = LPConfig("pdoall", 1, 2, 2)
        for program in ALL:
            if TRAIT_PREDICTABLE_LCD in program.traits:
                s0 = runner.evaluate(program, dep0).speedup
                s2 = runner.evaluate(program, dep2).speedup
                assert s2 > s0 * 1.05, (
                    f"{program.full_name} claims a predictable LCD "
                    f"(dep0={s0:.2f}, dep2={s2:.2f})"
                )


class TestSerialInputPhases:
    """Every benchmark carries a serial input phase (DESIGN.md substitution
    for SPEC's input parsing); limit speedups must stay Amdahl-bounded."""

    def test_no_benchmark_fully_parallelizes(self, runner):
        config = LPConfig("pdoall", 0, 3, 3)  # the most generous PDOALL
        for program in ALL:
            result = runner.evaluate(program, config)
            assert result.coverage < 0.999, program.full_name

    def test_best_helix_bounded(self, runner):
        for program in ALL:
            speedup = runner.evaluate(program, BEST_HELIX).speedup
            assert speedup < 1000, (
                f"{program.full_name} exploded to {speedup:.0f}x: "
                "missing a serial phase?"
            )
