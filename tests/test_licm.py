"""LICM tests: hoisting legality and profitability."""

from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse
from repro.frontend.sema import analyze
from repro.interp.interpreter import run_module
from repro.ir import verify_module
from repro.ir.instructions import Load
from repro.passes import (
    run_dce_module,
    run_gvn_module,
    run_licm_module,
    run_loop_simplify_module,
    run_mem2reg_module,
)


def prepare(source):
    """Compile without LICM so the pass under test does the hoisting."""
    module = CodeGenerator(analyze(parse(source))).run()
    run_mem2reg_module(module)
    run_gvn_module(module)
    run_dce_module(module)
    run_loop_simplify_module(module)
    verify_module(module)
    return module


def loads_in_loops(module):
    from repro.analysis import LoopInfo

    count = 0
    for function in module.defined_functions():
        info = LoopInfo(function)
        for loop in info.all_loops():
            for block in loop.blocks:
                count += sum(isinstance(i, Load) for i in block.instructions)
    return count


BOUND_RELOAD = """
int N = 50;
int A[64];
int main() {
  int i;
  for (i = 0; i < N; i = i + 1) { A[i] = i; }
  return A[10];
}
"""


class TestHoisting:
    def test_bound_reload_hoisted(self):
        module = prepare(BOUND_RELOAD)
        before = loads_in_loops(module)
        hoisted = run_licm_module(module)
        verify_module(module)
        assert hoisted >= 1
        assert loads_in_loops(module) < before
        result, _ = run_module(module)
        assert result == 10

    def test_hoisting_reduces_cost(self):
        module_plain = prepare(BOUND_RELOAD)
        _, machine_plain = run_module(module_plain)
        module_licm = prepare(BOUND_RELOAD)
        run_licm_module(module_licm)
        _, machine_licm = run_module(module_licm)
        assert machine_licm.cost < machine_plain.cost

    def test_invariant_arithmetic_hoisted(self):
        module = prepare(
            """
            int A[64];
            int main() {
              int i;
              int a = A[0];
              int b = A[1];
              for (i = 0; i < 50; i = i + 1) {
                A[i] = i + a * b * 3;
              }
              return A[7];
            }
            """
        )
        hoisted = run_licm_module(module)
        verify_module(module)
        assert hoisted >= 1
        result, _ = run_module(module)
        module2 = prepare(
            """
            int A[64];
            int main() {
              int i;
              int a = A[0];
              int b = A[1];
              for (i = 0; i < 50; i = i + 1) {
                A[i] = i + a * b * 3;
              }
              return A[7];
            }
            """
        )
        reference, _ = run_module(module2)
        assert result == reference


class TestLegality:
    def test_load_not_hoisted_past_aliasing_store(self):
        source = """
        int N = 5;
        int A[64];
        int main() {
          int i;
          int s = 0;
          for (i = 0; i < 20; i = i + 1) {
            s = s + N;
            if (i == 3) { N = 10; }   // the bound changes mid-loop!
          }
          return s;
        }
        """
        module = prepare(source)
        reference, _ = run_module(prepare(source))
        run_licm_module(module)
        verify_module(module)
        result, _ = run_module(module)
        assert result == reference

    def test_distinct_globals_do_not_block(self):
        # Stores to B must not pin loads of A.
        module = prepare(
            """
            int A[4]; int B[64];
            int main() {
              int i;
              for (i = 0; i < 30; i = i + 1) { B[i] = A[0] + i; }
              return B[3];
            }
            """
        )
        hoisted = run_licm_module(module)
        assert hoisted >= 1

    def test_user_call_blocks_load_hoisting(self):
        source = """
        int N = 5;
        int bump() { N = N + 1; return 0; }
        int main() {
          int i;
          int s = 0;
          for (i = 0; i < 10; i = i + 1) {
            s = s + N;
            bump();
          }
          return s;
        }
        """
        module = prepare(source)
        reference, _ = run_module(prepare(source))
        run_licm_module(module)
        result, _ = run_module(module)
        assert result == reference == sum(range(5, 15))

    def test_division_never_hoisted(self):
        # 10 / d would trap if speculated when d == 0 on the untaken path.
        source = """
        int D = 0;
        int main() {
          int i;
          int s = 0;
          int d = D;
          for (i = 0; i < 10; i = i + 1) {
            if (d != 0) { s = s + 10 / d; }
            s = s + 1;
          }
          return s;
        }
        """
        module = prepare(source)
        run_licm_module(module)
        verify_module(module)
        result, _ = run_module(module)
        assert result == 10

    def test_conditional_load_not_hoisted(self):
        # A guarded possibly-out-of-bounds load must stay guarded.
        source = """
        int A[4];
        int IDX = 100000;
        int main() {
          int i;
          int s = 0;
          int idx = IDX;
          for (i = 0; i < 10; i = i + 1) {
            if (idx < 4) { s = s + A[idx]; }
            s = s + i;
          }
          return s;
        }
        """
        module = prepare(source)
        run_licm_module(module)
        result, _ = run_module(module)  # must not trap
        assert result == 45

    def test_pipeline_with_licm_preserves_suite_behaviour(self):
        from repro.bench import suite_programs
        from repro.frontend import compile_source

        # Spot-check two real suite programs end to end.
        for program in suite_programs("eembc")[:2]:
            optimized = compile_source(program.source)
            result, machine = run_module(optimized, fuel=50_000_000)
            unoptimized = CodeGenerator(
                analyze(parse(program.source))
            ).run()
            reference, ref_machine = run_module(unoptimized, fuel=200_000_000)
            assert result == reference
            assert machine.output == ref_machine.output
            assert machine.cost <= ref_machine.cost
