"""Evaluator semantics tests: each Table-II flag changes outcomes the way
the paper says it should, on purpose-built kernels."""

import pytest

from repro.core import LPConfig, Loopapalooza


def speedups(lp, *config_names):
    return [lp.evaluate(name).speedup for name in config_names]


class TestDOALLSemantics:
    def test_conflict_free_loop_parallelizes(self, doall_kernel):
        result = doall_kernel.evaluate("doall:reduc0-dep0-fn2")
        assert result.speedup > 20

    def test_fn0_serializes_loop_with_calls(self, doall_kernel):
        result = doall_kernel.evaluate("doall:reduc0-dep0-fn0")
        assert result.speedup == pytest.approx(1.0)

    def test_single_conflict_marks_whole_loop_serial(self):
        # Conflicts only in the first invocation; DOALL must also serialize
        # the conflict-free second invocation of the same static loop.
        lp = Loopapalooza(
            """
            int A[64];
            int run(int chain) {
              int i;
              for (i = 1; i < 32; i = i + 1) {
                if (chain) { A[i] = A[i-1] + 1; }
                if (!chain) { A[i + 32] = i; }
              }
              return A[31];
            }
            int main() { return run(1) + run(0); }
            """,
            "marking",
        )
        result = lp.evaluate("doall:reduc0-dep0-fn2")
        summary = result.loops["run.for.cond1"]
        assert summary.parallel_invocations == 0

    def test_reduction_blocks_doall_until_reduc1(self, reduction_kernel):
        reduc0 = reduction_kernel.evaluate("doall:reduc0-dep0-fn0")
        reduc1 = reduction_kernel.evaluate("doall:reduc1-dep0-fn0")
        assert reduc0.speedup == pytest.approx(1.0)
        assert reduc1.speedup > 1.3


class TestPDOALLSemantics:
    def test_matches_doall_when_no_infrequent_lcds(self, doall_kernel):
        doall = doall_kernel.evaluate("doall:reduc0-dep0-fn2")
        pdoall = doall_kernel.evaluate("pdoall:reduc0-dep0-fn2")
        assert pdoall.speedup == pytest.approx(doall.speedup, rel=1e-6)

    def test_rare_conflicts_cost_one_phase_each(self):
        lp = Loopapalooza(
            """
            int A[200]; int S[1];
            int main() {
              int i;
              for (i = 0; i < 200; i = i + 1) {
                int seen = S[0];
                A[i] = i + seen;
                if (i == 50 || i == 150) { S[0] = i; }
              }
              return A[199];
            }
            """,
            "rare",
        )
        result = lp.evaluate("pdoall:reduc0-dep0-fn2")
        summary = result.loops["main.for.cond1"]
        assert summary.is_parallel
        assert summary.speedup > 30  # ~3 phases over 200 iterations

    def test_frequent_chain_stays_serial(self, chain_kernel):
        result = chain_kernel.evaluate("pdoall:reduc0-dep0-fn2")
        assert result.speedup == pytest.approx(1.0, abs=0.05)

    def test_dep2_unlocks_predictable_lcd(self):
        lp = Loopapalooza(
            """
            float OUT[300];
            float S = 0.0;
            int main() {
              int i;
              float x = 0.5;
              for (i = 0; i < 300; i = i + 1) {
                OUT[i] = x * 2.0;
                x = x + 0.25;       // exact dyadic stride: predictable
              }
              S = OUT[299];
              return 0;
            }
            """,
            "predictable",
        )
        dep0 = lp.evaluate("pdoall:reduc0-dep0-fn2")
        dep2 = lp.evaluate("pdoall:reduc0-dep2-fn2")
        assert dep0.speedup == pytest.approx(1.0, abs=0.05)
        assert dep2.speedup > 10

    def test_dep2_cannot_unlock_unpredictable_lcd(self):
        lp = Loopapalooza(
            """
            int OUT[300];
            int main() {
              int i;
              int x = 17;
              for (i = 0; i < 300; i = i + 1) {
                OUT[i] = x;
                x = (x * 1103515245 + 12345) & 2147483647;
              }
              return OUT[299] & 255;
            }
            """,
            "unpredictable",
        )
        dep2 = lp.evaluate("pdoall:reduc0-dep2-fn2")
        dep3 = lp.evaluate("pdoall:reduc0-dep3-fn2")
        assert dep2.speedup < 1.5
        assert dep3.speedup > 10  # perfect prediction removes the LCD

    def test_dep3_does_not_remove_memory_conflicts(self, chain_kernel):
        result = chain_kernel.evaluate("pdoall:reduc0-dep3-fn3")
        assert result.speedup == pytest.approx(1.0, abs=0.05)


class TestHELIXSemantics:
    def test_pipelines_early_resolving_chain(self):
        lp = Loopapalooza(
            """
            int OUT[300];
            int main() {
              int i;
              int cursor = 3;
              int sink = 0;
              for (i = 0; i < 300; i = i + 1) {
                cursor = (cursor * 5 + 1) & 255;   // early producer
                int k; int w = 0;
                for (k = 0; k < 10; k = k + 1) { w = w + ((cursor + k) & 7); }
                OUT[i] = w;
                sink = sink + w;
              }
              return sink & 32767;
            }
            """,
            "pipeline",
        )
        pdoall = lp.evaluate("pdoall:reduc1-dep2-fn2")
        helix = lp.evaluate("helix:reduc1-dep1-fn2")
        assert helix.speedup > 3 * pdoall.speedup

    def test_late_producer_early_consumer_stays_serial(self):
        lp = Loopapalooza(
            """
            int OUT[200];
            int main() {
              int i;
              int state = 1;
              for (i = 0; i < 200; i = i + 1) {
                int k; int w = state;               // early consumer
                for (k = 0; k < 10; k = k + 1) { w = (w * 3 + k) & 1023; }
                OUT[i] = w;
                state = w;                           // late producer
              }
              return OUT[199];
            }
            """,
            "serial_chain",
        )
        helix = lp.evaluate("helix:reduc1-dep1-fn2")
        # The outer loop's state chain (late producer, early consumer) allows
        # at most a sliver of overlap — nothing like the 200x trip count.
        outer = helix.loops["main.for.cond1"]
        assert outer.speedup < 1.3
        assert helix.speedup < 3.5

    def test_memory_sync_formula(self, chain_kernel):
        # A[i] = A[i-1] + i: short producer->consumer distance; HELIX gains
        # a pipelining factor but nowhere near the trip count.
        result = chain_kernel.evaluate("helix:reduc0-dep0-fn2")
        assert 1.0 < result.speedup < 20

    def test_dep1_lowers_register_lcds(self):
        lp = Loopapalooza(
            """
            int OUT[300];
            int main() {
              int i;
              int x = 17;
              int sink = 0;
              for (i = 0; i < 300; i = i + 1) {
                x = (x * 1103515245 + 12345) & 2147483647;  // early
                int k; int w = 0;
                for (k = 0; k < 8; k = k + 1) { w = w + ((x >> k) & 15); }
                sink = sink + w;
                OUT[i] = w;
              }
              return sink & 32767;
            }
            """,
            "dep1",
        )
        dep0 = lp.evaluate("helix:reduc1-dep0-fn2")
        dep1 = lp.evaluate("helix:reduc1-dep1-fn2")
        # dep0: the outer loop's register LCD blocks it (inner loops may
        # still parallelize); dep1 lowers it to memory and pipelines it.
        outer0 = dep0.loops["main.for.cond1"]
        outer1 = dep1.loops["main.for.cond1"]
        assert not outer0.is_parallel
        assert "register-lcd" in outer0.reasons
        assert outer1.is_parallel
        assert dep1.speedup > 2 * dep0.speedup


class TestNestedPropagation:
    def test_inner_savings_shrink_outer_iterations(self):
        lp = Loopapalooza(
            """
            int A[40];
            int OUT[40];
            int main() {
              int t; int i;
              for (t = 1; t < 40; t = t + 1) {
                // outer chain: serial
                A[t] = A[t-1] + 1;
                // inner parallel work dominating the iteration
                for (i = 0; i < 40; i = i + 1) { OUT[i] = i * t; }
              }
              return A[39];
            }
            """,
            "nested",
        )
        result = lp.evaluate("pdoall:reduc0-dep0-fn2")
        # outer serial, inner parallel: most of each outer iteration vanishes
        assert result.speedup > 5
        outer = result.loops["main.for.cond1"]
        assert not outer.is_parallel

    def test_coverage_counts_outermost_parallel_region(self, reduction_kernel):
        result = reduction_kernel.evaluate("helix:reduc1-dep1-fn2")
        assert 0.5 < result.coverage <= 1.0

    def test_serial_program_has_zero_coverage(self, chain_kernel):
        result = chain_kernel.evaluate("pdoall:reduc0-dep0-fn2")
        assert result.coverage == pytest.approx(0.0, abs=0.01)


class TestEvaluationResultAccounting:
    def test_speedup_consistency(self, reduction_kernel):
        result = reduction_kernel.evaluate("helix:reduc1-dep1-fn2")
        assert result.speedup == pytest.approx(
            result.total_serial / result.total_parallel
        )

    def test_parallel_never_exceeds_serial(self, runner):
        from repro.bench import suite_programs
        from repro.core import paper_configurations

        for program in suite_programs("eembc")[:3]:
            for config in paper_configurations()[:6]:
                result = runner.evaluate(program, config)
                assert result.total_parallel <= result.total_serial + 1e-6

    def test_string_config_accepted(self, doall_kernel):
        by_string = doall_kernel.evaluate("helix:reduc1-dep1-fn2")
        by_object = doall_kernel.evaluate(LPConfig("helix", 1, 1, 2))
        assert by_string.speedup == pytest.approx(by_object.speedup)


class TestInnermostOnlyMode:
    """Related-work baseline (paper §V): Kejariwal-style innermost-only."""

    def test_outer_loops_serialized(self):
        lp = Loopapalooza(
            """
            int A[400];
            int main() {
              int i; int j;
              for (i = 0; i < 20; i = i + 1) {
                for (j = 0; j < 20; j = j + 1) { A[i*20+j] = i + j; }
              }
              return A[5];
            }
            """,
            "innermost",
        )
        nested = lp.evaluate("pdoall:reduc1-dep2-fn2")
        innermost = lp.evaluate("pdoall:reduc1-dep2-fn2", innermost_only=True)
        assert nested.speedup > innermost.speedup > 1.0
        outer = innermost.loops["main.for.cond1"]
        assert not outer.is_parallel
        assert "outer-loop" in outer.reasons

    def test_flat_loops_unaffected(self, doall_kernel):
        full = doall_kernel.evaluate("pdoall:reduc1-dep2-fn2")
        restricted = doall_kernel.evaluate(
            "pdoall:reduc1-dep2-fn2", innermost_only=True
        )
        assert restricted.speedup == pytest.approx(full.speedup)
