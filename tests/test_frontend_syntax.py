"""MiniC lexer, parser, and semantic-analysis tests."""

import pytest

from repro.errors import ParseError, SemanticError
from repro.frontend import analyze, parse, tokenize
from repro.frontend import ast_nodes as ast


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 3.5 1e3 2.5e-2 7")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [
            ("int", 42), ("float", 3.5), ("float", 1000.0),
            ("float", 0.025), ("int", 7),
        ]

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("int intx for fortune")
        assert [t.kind for t in tokens[:-1]] == ["kw", "ident", "kw", "ident"]

    def test_two_char_operators(self):
        tokens = tokenize("<= >= == != && || << >>")
        assert [t.text for t in tokens[:-1]] == [
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
        ]

    def test_comments_skipped(self):
        tokens = tokenize("a // line comment\nb /* block\ncomment */ c")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_line_numbers_track_newlines(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("a /* never closed")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")


class TestParser:
    def test_program_structure(self):
        program = parse(
            """
            int G = 3;
            float T[8];
            int f(int a, float* p) { return a; }
            int main() { return f(G, T); }
            """
        )
        kinds = [type(d).__name__ for d in program.declarations]
        assert kinds == ["GlobalDecl", "GlobalDecl", "FunctionDecl", "FunctionDecl"]

    def test_precedence(self):
        program = parse("int main() { return 1 + 2 * 3; }")
        ret = program.declarations[0].body.statements[0]
        assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
        assert isinstance(ret.value.rhs, ast.Binary) and ret.value.rhs.op == "*"

    def test_comparison_binds_looser_than_shift(self):
        program = parse("int main() { return 1 < 2 << 3; }")
        ret = program.declarations[0].body.statements[0]
        assert ret.value.op == "<"

    def test_for_with_decl_init(self):
        program = parse("int main() { for (int i = 0; i < 3; i = i + 1) { } return 0; }")
        loop = program.declarations[0].body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)

    def test_dangling_else_attaches_inner(self):
        program = parse(
            "int main() { if (1) if (0) return 1; else return 2; return 3; }"
        )
        outer = program.declarations[0].body.statements[0]
        assert outer.else_body is None
        assert outer.then_body.else_body is not None

    def test_cast_expression(self):
        program = parse("int main() { return (int)(1.5 * 2.0); }")
        ret = program.declarations[0].body.statements[0]
        assert isinstance(ret.value, ast.CastExpr)

    def test_cast_vs_parenthesized_expr(self):
        program = parse("int x = 3; int main() { return (x) + 1; }")
        ret = program.declarations[1].body.statements[0]
        assert isinstance(ret.value, ast.Binary)

    def test_array_global_brace_init(self):
        program = parse("int A[4] = {1, -2, 3}; int main() { return 0; }")
        decl = program.declarations[0]
        assert decl.initializer == [1, -2, 3]

    @pytest.mark.parametrize("source", [
        "int main() { return 1 }",            # missing semicolon
        "int main() { 3 = x; }",              # bad assignment target
        "int main( { return 0; }",            # bad parameter list
        "void g;",                            # void global
        "int main() { int a[3] = 5; }",       # array local initializer
    ])
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)


class TestSema:
    def check(self, source):
        return analyze(parse(source))

    def test_valid_program_annotates_types(self):
        result = self.check(
            """
            float X[4];
            int main() {
              int i = 2;
              X[i] = 1.5;
              return (int)X[i];
            }
            """
        )
        assert "main" in result.signatures
        assert "X" in result.globals

    @pytest.mark.parametrize("source,message", [
        ("int main() { return y; }", "undeclared"),
        ("int main() { int x; int x; return 0; }", "redeclaration"),
        ("int x = 1; int x = 2; int main() { return 0; }", "redeclaration"),
        ("int main() { break; }", "break outside"),
        ("int main() { continue; }", "continue outside"),
        ("float f() { return; } int main() { return 0; }", "must return a value"),
        ("void g() { return 3; } int main() { return 0; }", "cannot return"),
        ("int main() { return unknown_fn(1); }", "unknown function"),
        ("int main() { return sqrt(); }", "expects 1 arguments"),
        ("int main() { int x = 1.5; return x; }", "narrowing"),
        ("float A[4]; int main() { A = 3.0; return 0; }", "assign to an array"),
        ("int main() { if (1.5) { } return 0; }", "condition must be int"),
        ("int main() { return 1.5 % 2.0; }", "needs int operands"),
        ("float A[3]; int main() { return A[1.0]; }", "index must be int"),
        ("int x = 1; int main() { return x[0]; }", "not an array"),
        ("int main() { return 3; } float main2() { return 0.0; }", None),
    ])
    def test_semantic_errors(self, source, message):
        if message is None:
            self.check(source)  # valid control case
            return
        with pytest.raises(SemanticError, match=message):
            self.check(source)

    def test_main_required(self):
        with pytest.raises(SemanticError, match="no main"):
            self.check("int f() { return 0; }")

    def test_main_signature_enforced(self):
        with pytest.raises(SemanticError, match="int main"):
            self.check("int main(int x) { return x; }")
        with pytest.raises(SemanticError, match="int main"):
            self.check("float main_helper() { return 0.0; } float main() { return 0.0; }")

    def test_int_widens_to_float(self):
        self.check("int main() { float x = 3; x = x + 1; return (int)x; }")

    def test_shadowing_allowed_in_inner_scope(self):
        self.check(
            """
            int main() {
              int x = 1;
              { int x2 = 2; x = x2; }
              if (x) { int x3 = 3; x = x3; }
              return x;
            }
            """
        )

    def test_pointer_param_accepts_array_decay(self):
        self.check(
            """
            int A[8];
            int f(int* p) { return p[0]; }
            int main() { return f(A); }
            """
        )

    def test_pointer_type_mismatch_rejected(self):
        with pytest.raises(SemanticError, match="does not match"):
            self.check(
                """
                float A[8];
                int f(int* p) { return p[0]; }
                int main() { return f(A); }
                """
            )

    def test_address_of_requires_lvalue(self):
        with pytest.raises(SemanticError, match="lvalue"):
            self.check("int f(int* p) { return p[0]; } int main() { return f(&(1+2)); }")
