"""Shared fixtures for the figure-regeneration benchmarks.

Profiling the 48 synthetic benchmarks once per session keeps the
pytest-benchmark timings focused on the evaluation machinery. Each harness
also writes its regenerated table under ``benchmarks/out/`` so the artifacts
survive without ``-s``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.suites import SuiteRunner

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner():
    shared = SuiteRunner()
    # Pre-profile everything so per-figure timings measure evaluation only.
    from repro.bench import all_programs

    for program in all_programs():
        shared.instance(program)
    return shared


@pytest.fixture(scope="session")
def artifact_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def publish(artifact_dir, name, text):
    """Print a regenerated table and save it under benchmarks/out/."""
    print()
    print(text)
    (artifact_dir / name).write_text(text + "\n")
