"""Regenerates paper Fig. 3: GEOMEAN speedups for the numeric suites
(EEMBC, SpecFP2000/2006) across the 14 configurations.

Run: ``pytest benchmarks/test_fig3_numeric.py --benchmark-only -s``
"""

from repro.reporting import figure3_numeric, format_speedup_figure

from conftest import publish

PAPER_REFERENCE = """
Paper reference points (Fig. 3):
  doall reduc0-dep0-fn0  : 1.6x-3.1x
  doall reduc1-dep0-fn0  : 2.2x-3.6x
  pdoall reduc1-dep2-fn0 : 4.0x-4.6x
  pdoall reduc1-dep2-fn2 : 6.0x-10.7x  (best realistic PDOALL)
  pdoall reduc0-dep3-fn3 : 10x-92x
  helix  reduc1-dep1-fn2 : 21.6x-50.6x (best HELIX)
""".strip()


def test_fig3_numeric(benchmark, runner, artifact_dir):
    rows = benchmark(figure3_numeric, runner)
    text = format_speedup_figure(
        rows, "Fig. 3 (reproduced) — numeric GEOMEAN speedups"
    )
    publish(artifact_dir, "fig3_numeric.txt", text + "\n\n" + PAPER_REFERENCE)
    best = rows["helix:reduc1-dep1-fn2"]
    for suite, value in best.items():
        assert value > 10, f"{suite} best HELIX too low"
