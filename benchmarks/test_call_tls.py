"""Extension bench: function-call/continuation TLS potential per suite
(the paper's §I note that its taxonomy also covers call-level TLS).

Run: ``pytest benchmarks/test_call_tls.py --benchmark-only -s``
"""

from repro.bench import suite_programs
from repro.core.call_tls import estimate_call_tls

from conftest import publish


def test_call_tls_per_suite(benchmark, runner, artifact_dir):
    def sweep():
        rows = []
        for suite in ("specint2000", "specint2006", "eembc",
                      "specfp2000", "specfp2006"):
            for program in suite_programs(suite):
                report = estimate_call_tls(runner.instance(program).profile())
                if report.sites:
                    rows.append((
                        program.full_name, report.speedup,
                        report.call_coverage,
                    ))
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows

    rows = benchmark(sweep)
    lines = [
        "Extension — function-call/continuation TLS limit per benchmark",
        f"{'benchmark':36s}{'speedup':>10s}{'in-call time':>14s}",
    ]
    for name, speedup, coverage in rows:
        lines.append(f"{name:36s}{speedup:>9.2f}x{coverage * 100:>13.1f}%")
    publish(artifact_dir, "call_tls.txt", "\n".join(lines))
    # Consistent with the paper's focus on loops: call-level TLS alone is
    # marginal on these suites.
    assert all(speedup < 2.0 for _, speedup, _ in rows)
    assert rows, "some benchmarks must expose tracked call sites"
