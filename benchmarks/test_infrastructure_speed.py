"""Infrastructure throughput benchmarks (engineering health, not paper data):

* MiniC compile throughput (frontend + full pass pipeline),
* interpreter throughput in IR instructions/second,
* instrumented-profiling overhead factor,
* per-configuration evaluation latency on a profiled benchmark.

Run: ``pytest benchmarks/test_infrastructure_speed.py --benchmark-only``
"""

import time

import pytest

from repro.bench import find_program
from repro.core import BEST_HELIX, Loopapalooza
from repro.core.evaluator import evaluate_config
from repro.frontend import compile_source
from repro.interp.interpreter import Interpreter
from repro.runtime.recorder import ProfilingRuntime

KERNEL = find_program("specfp2000/swim_like").source


def test_compile_throughput(benchmark):
    module = benchmark(compile_source, KERNEL)
    assert module.get_function("main").blocks


@pytest.mark.parametrize("backend", ["closure", "jit"])
def test_interpreter_throughput(benchmark, backend):
    module = compile_source(KERNEL)
    # Warm run outside the timer: fuses closures / compiles JIT templates.
    Interpreter(module, backend=backend).run("main")

    def run():
        machine = Interpreter(module, backend=backend)
        machine.run("main")
        return machine.cost

    cost = benchmark(run)
    assert cost > 100_000
    # Attach a derived metric: IR instructions per second.
    benchmark.extra_info["ir_instructions"] = cost


@pytest.mark.parametrize("backend", ["closure", "jit"])
def test_profiling_overhead(benchmark, backend):
    """One instrumented profiling run over a precompiled module.

    Compilation and the uninstrumented baseline happen once, outside the
    timer, so the measurement isolates the profiling overhead itself (and
    never touches the persistent profile store). The assertion is the
    fast-path invariant: instrumentation — hooks, batching, fused blocks,
    JIT event buffers — must not change the dynamic IR instruction count.
    """
    lp = Loopapalooza(KERNEL, "overhead_probe", backend=backend)
    baseline_cost = lp.run_uninstrumented()[1]

    def profile_instrumented():
        runtime = ProfilingRuntime("overhead_probe")
        machine = Interpreter(
            lp.module, runtime, lp.instrumentation, fuel=lp.fuel,
            backend=backend,
        )
        runtime.attach(machine)
        result = machine.run("main")
        return runtime.finish(machine.cost, result).total_cost

    cost = benchmark(profile_instrumented)
    assert cost == baseline_cost
    benchmark.extra_info["baseline_cost"] = baseline_cost


def _best_wall(module, backend, repeats=3):
    Interpreter(module, backend=backend).run("main")  # warm
    times = []
    for _ in range(repeats):
        machine = Interpreter(module, backend=backend)
        start = time.perf_counter()
        machine.run("main")
        times.append(time.perf_counter() - start)
    return min(times)


def test_jit_speed_gate():
    """The JIT backend's reason to exist: on a numeric kernel it must beat
    the closure interpreter by a healthy margin (measured ~3x; gated at
    1.5x to absorb machine noise)."""
    module = compile_source(KERNEL)
    closure = _best_wall(module, "closure")
    jit = _best_wall(module, "jit")
    assert jit * 1.5 <= closure, (
        f"JIT {jit:.3f}s vs closure {closure:.3f}s — under the 1.5x gate"
    )


def test_evaluation_latency(benchmark):
    lp = Loopapalooza(KERNEL, "eval_probe")
    profile = lp.profile()

    def evaluate():
        return evaluate_config(profile, lp.static_info, BEST_HELIX)

    result = benchmark(evaluate)
    assert result.speedup > 1.0
