"""Regenerates the measured counterpart of paper Table I: the census of
ordering-constraint categories per suite (computable IVs/MIVs, reduction
accumulators, non-computable register LCDs, loops with calls / unsafe
calls).

Run: ``pytest benchmarks/test_table1_census.py --benchmark-only -s``
"""

from repro.bench import ALL_SUITES
from repro.reporting import (
    format_census,
    format_dynamic_census,
    suite_dynamic_census,
    table1_census,
)

from conftest import publish


def test_table1_census(benchmark, runner, artifact_dir):
    rows = benchmark(table1_census, runner)
    dynamic_rows = {
        suite: suite_dynamic_census(runner, suite) for suite in ALL_SUITES
    }
    text = format_census(rows) + "\n\n" + format_dynamic_census(dynamic_rows)
    publish(artifact_dir, "table1_census.txt", text)
    # The dynamic axis: non-numeric suites carry more unpredictable
    # register LCDs than the numeric suites (Table I narrative).
    non_numeric_unpred = sum(
        dynamic_rows[s]["unpredictable_reg_lcds"]
        for s in ("specint2000", "specint2006")
    )
    numeric_unpred = sum(
        dynamic_rows[s]["unpredictable_reg_lcds"]
        for s in ("eembc", "specfp2000", "specfp2006")
    )
    assert non_numeric_unpred > numeric_unpred
    # Non-numeric suites must be richer in non-computable register LCDs
    # relative to reductions than the numeric suites (Table I narrative).
    def ratio(suite):
        totals = rows[suite]
        return totals["noncomputable_phis"] / max(1, totals["reduction_phis"])

    non_numeric = (ratio("specint2000") + ratio("specint2006")) / 2
    numeric = (ratio("eembc") + ratio("specfp2000") + ratio("specfp2006")) / 3
    assert non_numeric > numeric
