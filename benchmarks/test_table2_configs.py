"""Regenerates paper Table II as a legality/behaviour matrix: every flag
combination, its validity, and its observed effect on a probe kernel.

Run: ``pytest benchmarks/test_table2_configs.py --benchmark-only -s``
"""

import itertools

from repro.core import LPConfig, Loopapalooza
from repro.errors import ConfigError

from conftest import publish

PROBE = """
float OUT = 0.0;
float X[120];
int main() {
  int i;
  float acc = 0.0;
  float drift = 0.5;
  for (i = 0; i < 120; i = i + 1) { X[i] = noise_f64(i); }
  for (i = 0; i < 120; i = i + 1) {
    acc = acc + X[i];              // reduction (reducX)
    drift = drift + 0.25;          // predictable register LCD (depX)
    X[i] = X[i] * drift + sqrt(X[i]);  // pure intrinsic call (fnX)
  }
  OUT = acc;
  return (int)(acc * 4.0);
}
"""


def sweep_full_matrix():
    lp = Loopapalooza(PROBE, "table2_probe")
    rows = []
    for model, reduc, dep, fn in itertools.product(
        ("doall", "pdoall", "helix"), (0, 1), (0, 1, 2, 3), (0, 1, 2, 3)
    ):
        try:
            config = LPConfig(model, reduc, dep, fn)
        except ConfigError:
            rows.append((f"{model}:reduc{reduc}-dep{dep}-fn{fn}", None))
            continue
        rows.append((config.name, lp.evaluate(config).speedup))
    return rows


def test_table2_configuration_matrix(benchmark, artifact_dir):
    rows = benchmark(sweep_full_matrix)
    lines = ["Table II (reproduced) — full flag matrix on the probe kernel",
             f"{'configuration':30s}{'speedup':>12s}"]
    for name, speedup in rows:
        rendered = "invalid" if speedup is None else f"{speedup:.2f}x"
        lines.append(f"{name:30s}{rendered:>12s}")
    publish(artifact_dir, "table2_configs.txt", "\n".join(lines))

    by_name = dict(rows)
    # DOALL rejects dep1-3 (paper: incompatible).
    assert by_name["doall:reduc0-dep1-fn0"] is None
    # Monotonicity along each axis on the probe.
    assert by_name["pdoall:reduc1-dep2-fn2"] >= by_name["pdoall:reduc0-dep2-fn2"]
    assert by_name["pdoall:reduc1-dep2-fn2"] >= by_name["pdoall:reduc1-dep0-fn2"]
    assert by_name["pdoall:reduc1-dep2-fn2"] >= by_name["pdoall:reduc1-dep2-fn0"]
