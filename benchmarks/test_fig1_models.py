"""Fig. 1 counterpart: execution-model micro-benchmarks.

Fig. 1 in the paper is a semantics diagram (DOALL / Partial-DOALL /
DOACROSS-HELIX timelines). Its executable counterpart here drives the three
cost models over a canonical conflict timeline and checks the relative
outcomes the diagram depicts, while timing the model kernels.

Run: ``pytest benchmarks/test_fig1_models.py --benchmark-only -s``
"""

from repro.runtime.cost_models import (
    doall_cost,
    helix_cost,
    pdoall_cost,
    pdoall_phase_breaks,
)

from conftest import publish

# The Fig. 1 scenario: four iterations, one LCD from iteration 1 -> 2.
ITER_COSTS = [100, 110, 105, 100]
CONFLICT_PAIRS = {2: 1}
EARLY_SKEW = 10.0   # producer shortly after the consumer point


def run_models():
    doall = doall_cost(ITER_COSTS, has_any_conflict=True)
    breaks = pdoall_phase_breaks(CONFLICT_PAIRS, len(ITER_COSTS))
    pdoall = pdoall_cost(ITER_COSTS, breaks)
    helix = helix_cost(ITER_COSTS, EARLY_SKEW)
    return doall, pdoall, helix


def test_fig1_execution_models(benchmark, artifact_dir):
    doall, pdoall, helix = benchmark(run_models)
    serial = sum(ITER_COSTS)
    lines = [
        "Fig. 1 (reproduced) — execution-model semantics on one timeline",
        f"  iterations: {ITER_COSTS}, LCD 1->2, early-resolving skew {EARLY_SKEW}",
        f"  serial          : {serial}",
        f"  DOALL           : {doall.cost:.0f} ({'parallel' if doall.parallel else 'serial: ' + doall.reason})",
        f"  Partial-DOALL   : {pdoall.cost:.0f} (one restart phase)",
        f"  HELIX           : {helix.cost:.0f} (sync every iteration)",
    ]
    publish(artifact_dir, "fig1_models.txt", "\n".join(lines))
    # Fig. 1 ordering: DOALL aborts (serial); PDOALL pays one phase;
    # HELIX overlaps everything but pays the per-iteration skew.
    assert not doall.parallel and doall.cost == serial
    assert pdoall.parallel and max(ITER_COSTS) < pdoall.cost < serial
    assert helix.parallel
    assert helix.cost == max(ITER_COSTS) + EARLY_SKEW * len(ITER_COSTS)
    assert helix.cost < pdoall.cost  # with early skew, sync wins here
