"""Regenerates paper Fig. 5: GEOMEAN dynamic coverage for the selected
configurations (PDOALL dep0-fn2, HELIX dep0-fn2, HELIX dep1-fn2).

Run: ``pytest benchmarks/test_fig5_coverage.py --benchmark-only -s``
"""

from repro.reporting import figure5_coverage, format_coverage

from conftest import publish

PAPER_REFERENCE = """
Paper reference (Fig. 5): dynamic coverage jumps dramatically from
dep0-fn2 PDOALL to dep0-fn2 HELIX and again to dep1-fn2 HELIX — "recall
from Amdahl's Law that parallel speedup is a function of both degree of
parallelism and fraction of code parallelized".
""".strip()


def test_fig5_coverage(benchmark, runner, artifact_dir):
    rows = benchmark(figure5_coverage, runner)
    text = format_coverage(rows)
    publish(artifact_dir, "fig5_coverage.txt", text + "\n\n" + PAPER_REFERENCE)
    for suite in ("specint2000", "specint2006"):
        pdoall = rows["pdoall:reduc0-dep0-fn2"][suite]
        helix0 = rows["helix:reduc0-dep0-fn2"][suite]
        helix1 = rows["helix:reduc0-dep1-fn2"][suite]
        assert helix1 > helix0 >= pdoall * 0.9
