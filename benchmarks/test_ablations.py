"""Ablation benchmarks for the design choices DESIGN.md calls out:

1. HELIX multi-sync-point vs classic single-sync DOACROSS;
2. Partial-DOALL cut-off sensitivity (the paper's 80 % rule);
3. predictor ablation: each scheme alone vs perfect hybridization, on the
   register-LCD value streams recorded from the real suites.

Run: ``pytest benchmarks/test_ablations.py --benchmark-only -s``
"""

import pytest

from repro.bench import suite_programs
from repro.core import LPConfig
from repro.predictors import (
    FCMPredictor,
    LastValuePredictor,
    StridePredictor,
    TwoDeltaStridePredictor,
    accuracy,
    perfect_hybrid_accuracy,
)
from repro.reporting import geomean
from repro.runtime.cost_models import doacross_cost, helix_cost

from conftest import publish


class TestHelixVsDoacross:
    def test_multi_sync_beats_single_sync(self, benchmark, artifact_dir):
        """HELIX generalizes DOACROSS with one sync per LCD; with one early
        and one late LCD the single sync must cover the whole span."""

        def sweep():
            rows = []
            iter_costs = [50.0] * 64
            for late_gap in (2.0, 10.0, 20.0, 40.0):
                producers = [5.0, 5.0 + late_gap]
                consumers = [3.0, 3.0 + late_gap]
                helix_delta = 2.0  # each LCD has skew 2 under per-LCD sync
                helix = helix_cost(iter_costs, helix_delta)
                doacross = doacross_cost(iter_costs, producers, consumers)
                rows.append((late_gap, helix.cost, doacross.cost))
            return rows

        rows = benchmark(sweep)
        lines = ["Ablation — HELIX (per-LCD sync) vs single-sync DOACROSS",
                 f"{'LCD span':>10s}{'HELIX':>12s}{'DOACROSS':>12s}"]
        for gap, helix_val, doacross_val in rows:
            lines.append(f"{gap:>10.0f}{helix_val:>12.0f}{doacross_val:>12.0f}")
        publish(artifact_dir, "ablation_doacross.txt", "\n".join(lines))
        for _, helix_val, doacross_val in rows:
            assert helix_val <= doacross_val


class TestPdoallThreshold:
    def test_cutoff_sensitivity(self, benchmark, runner, artifact_dir):
        """Sweep the 80 % conflicting-iteration cut-off and measure the
        non-numeric geomean at the best realistic PDOALL configuration."""
        import repro.core.evaluator as evaluator_module
        import repro.runtime.cost_models as models

        config = LPConfig("pdoall", 1, 2, 2)
        programs = suite_programs("specint2006")

        def sweep():
            results = []
            original = models.PDOALL_SERIAL_THRESHOLD
            try:
                for threshold in (0.2, 0.5, 0.8, 0.95):
                    models.PDOALL_SERIAL_THRESHOLD = threshold
                    evaluator_module.PDOALL_SERIAL_THRESHOLD = threshold
                    speedups = []
                    for program in programs:
                        lp = runner.instance(program)
                        # bypass the per-instance cache: fresh evaluation
                        from repro.core.evaluator import evaluate_config

                        result = evaluate_config(
                            lp.profile(), lp.static_info, config
                        )
                        speedups.append(result.speedup)
                    results.append((threshold, geomean(speedups)))
            finally:
                models.PDOALL_SERIAL_THRESHOLD = original
                evaluator_module.PDOALL_SERIAL_THRESHOLD = original
            return results

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        lines = ["Ablation — PDOALL serial cut-off sensitivity (specint2006, "
                 "reduc1-dep2-fn2)",
                 f"{'cutoff':>8s}{'geomean speedup':>18s}"]
        for threshold, value in rows:
            lines.append(f"{threshold:>8.2f}{value:>17.2f}x")
        publish(artifact_dir, "ablation_pdoall_cutoff.txt", "\n".join(lines))
        values = [value for _, value in rows]
        assert values == sorted(values), "harsher cut-offs must not help"
        # The paper's 0.8 sits on the flat part of the curve.
        assert values[2] == pytest.approx(values[3], rel=0.2)


class TestPredictorAblation:
    def test_each_predictor_alone_vs_hybrid(self, benchmark, runner, artifact_dir):
        """Measure per-scheme accuracy on the actual register-LCD value
        streams recorded while profiling the SPEC-like suites."""

        def collect_streams():
            streams = []
            for suite in ("specint2000", "specfp2000"):
                for program in suite_programs(suite):
                    profile = runner.instance(program).profile()
                    for invocation in profile.all_invocations():
                        for values in invocation.lcd_values.values():
                            if len(values) >= 8:
                                streams.append(values[:512])
            return streams

        streams = collect_streams()
        assert streams, "suites must expose register-LCD streams"

        def measure():
            schemes = {
                "last-value": LastValuePredictor,
                "stride": StridePredictor,
                "2-delta": TwoDeltaStridePredictor,
                "fcm": lambda: FCMPredictor(order=2),
            }
            rows = {}
            for name, factory in schemes.items():
                scores = [accuracy(factory(), values) for values in streams]
                rows[name] = sum(scores) / len(scores)
            hybrid_scores = [perfect_hybrid_accuracy(v) for v in streams]
            rows["perfect-hybrid"] = sum(hybrid_scores) / len(hybrid_scores)
            return rows

        rows = benchmark(measure)
        lines = [
            "Ablation — value-predictor accuracy on recorded LCD streams "
            f"({len(streams)} streams)",
            f"{'scheme':>16s}{'mean accuracy':>16s}",
        ]
        for name, value in rows.items():
            lines.append(f"{name:>16s}{value * 100:>15.1f}%")
        publish(artifact_dir, "ablation_predictors.txt", "\n".join(lines))
        hybrid = rows.pop("perfect-hybrid")
        assert all(hybrid >= value - 1e-9 for value in rows.values())
