"""Related-work comparison (paper §V).

The paper claims its speedups exceed previous limit studies because LP
supports (a) outer-loop parallelization and nested parallelism (unlike
Kejariwal et al., whose loop-level analysis found only ~18 % geomean
speedup on SPEC CPU2000) and (b) frequent-LCD synchronization (HELIX),
which SWARM-style conflict-free models lack. This harness reproduces both
gaps on the synthetic suites:

* **innermost-only** mode disables outer/nested parallelization;
* **DOALL-family** configurations stand in for conflict-free-only models.

Run: ``pytest benchmarks/test_related_work.py --benchmark-only -s``
"""

from repro.bench import suite_programs
from repro.core import BEST_HELIX, LPConfig
from repro.reporting import geomean

from conftest import publish


def sweep(runner, suites, config, innermost_only):
    speedups = []
    for suite in suites:
        for program in suite_programs(suite):
            lp = runner.instance(program)
            speedups.append(
                lp.evaluate(config, innermost_only=innermost_only).speedup
            )
    return geomean(speedups)


def test_nested_vs_innermost_only(benchmark, runner, artifact_dir):
    suites = ("specint2000", "specint2006")

    def run():
        rows = []
        for config in (LPConfig("pdoall", 1, 2, 2), BEST_HELIX):
            nested = sweep(runner, suites, config, innermost_only=False)
            innermost = sweep(runner, suites, config, innermost_only=True)
            rows.append((config.name, innermost, nested))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Related work (paper §V) — innermost-only (Kejariwal-style) vs "
        "LP's nested parallelization, non-numeric geomean",
        f"{'configuration':30s}{'innermost-only':>16s}{'nested (LP)':>14s}",
    ]
    for name, innermost, nested in rows:
        lines.append(f"{name:30s}{innermost:>15.2f}x{nested:>13.2f}x")
    publish(artifact_dir, "related_work_nesting.txt", "\n".join(lines))
    for _, innermost, nested in rows:
        assert nested > innermost, (
            "outer-loop/nested parallelization must account for part of "
            "LP's advantage over prior limit studies"
        )
    # Kejariwal et al. report ~1.18x at the loop level on CPU2000; the
    # innermost-only PDOALL number should land in that modest regime.
    pdoall_row = rows[0]
    assert pdoall_row[1] < 2.5


def test_frequent_lcd_support_is_the_other_gap(benchmark, runner, artifact_dir):
    """SWARM supports no frequent LCDs (paper: 1.2x on frequent-LCD codes);
    HELIX's synchronization is what rescues them."""
    suites = ("specint2000", "specint2006")

    def run():
        conflict_free = sweep(
            runner, suites, LPConfig("pdoall", 1, 0, 2), innermost_only=False
        )
        synchronized = sweep(runner, suites, BEST_HELIX, innermost_only=False)
        return conflict_free, synchronized

    conflict_free, synchronized = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Related work — conflict-free-only vs frequent-LCD synchronization",
        f"  PDOALL reduc1-dep0-fn2 (no frequent-LCD support): {conflict_free:.2f}x",
        f"  HELIX  reduc1-dep1-fn2 (synchronized)           : {synchronized:.2f}x",
    ]
    publish(artifact_dir, "related_work_frequent_lcds.txt", "\n".join(lines))
    assert synchronized > 2 * conflict_free
