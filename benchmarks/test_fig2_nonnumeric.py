"""Regenerates paper Fig. 2: GEOMEAN speedups for the non-numeric suites
(SpecINT2000/2006) across the 14 configurations.

Run: ``pytest benchmarks/test_fig2_nonnumeric.py --benchmark-only -s``
"""

from repro.reporting import figure2_nonnumeric, format_speedup_figure

from conftest import publish

PAPER_REFERENCE = """
Paper reference points (Fig. 2):
  doall reduc0-dep0-fn0     : ~1.1x / ~1.3x   (int2000 / int2006)
  pdoall reduc1-dep2-fn2    : ~1.2x / ~2.0x
  pdoall reduc0-dep3-fn3    : ~2.0x / ~2.6x
  helix  reduc0-dep0-fn2    : ~2.2x / ~2.2x
  helix  reduc1-dep1-fn2    :  4.6x /  7.2x   (the headline result)
""".strip()


def test_fig2_nonnumeric(benchmark, runner, artifact_dir):
    rows = benchmark(figure2_nonnumeric, runner)
    text = format_speedup_figure(
        rows, "Fig. 2 (reproduced) — non-numeric GEOMEAN speedups"
    )
    publish(artifact_dir, "fig2_nonnumeric.txt", text + "\n\n" + PAPER_REFERENCE)
    # Shape assertions mirroring tests/test_trends.py (kept light here).
    best = rows["helix:reduc1-dep1-fn2"]
    assert best["specint2006"] > best["specint2000"] > 2.0
