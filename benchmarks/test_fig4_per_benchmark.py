"""Regenerates paper Fig. 4: per-benchmark speedups for the best PDOALL
(``reduc1-dep2-fn2``) and best HELIX (``reduc1-dep1-fn2``) configurations
across all four SPEC-like suites.

Run: ``pytest benchmarks/test_fig4_per_benchmark.py --benchmark-only -s``
"""

from repro.reporting import figure4_per_benchmark, format_figure4

from conftest import publish

PAPER_REFERENCE = """
Paper reference (Fig. 4): HELIX provides the more consistent gains across
the non-numeric benchmarks, but PDOALL wins a handful of low-conflict-rate
cases: 179_art, 450_soplex, 482_sphinx, and (429/181) mcf.
""".strip()

EXPECTED_PDOALL_WINS = {
    "specint2000/mcf_like",
    "specint2006/mcf_like06",
    "specfp2000/art_like",
    "specfp2006/soplex_like",
    "specfp2006/sphinx_like",
}


def test_fig4_per_benchmark(benchmark, runner, artifact_dir):
    data = benchmark(figure4_per_benchmark, runner)
    text = format_figure4(data)
    publish(artifact_dir, "fig4_per_benchmark.txt", text + "\n\n" + PAPER_REFERENCE)
    winners = {
        name for name, entry in data.items() if entry["pdoall"] > entry["helix"]
    }
    assert EXPECTED_PDOALL_WINS <= winners
    assert len(winners) < len(data) / 2, "HELIX should win the majority"
