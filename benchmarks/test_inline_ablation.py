"""Ablation: how much of the fn0 -> fn2 gap is "just inlining"?

The study keeps calls visible because real compilers cannot inline
everything — that is why the ``fn`` axis exists. This ablation compiles
each call-heavy benchmark twice (with and without the optional inliner)
and compares the *strictest* configuration, where calls serialize loops:
inlining dissolves part of the constraint, but serial input phases and
true dependences keep the rest.

Run: ``pytest benchmarks/test_inline_ablation.py --benchmark-only -s``
"""

from repro.bench import suite_programs
from repro.core import LPConfig, Loopapalooza
from repro.reporting import geomean

from conftest import publish

# The call-heavy members of the suites (TRAIT_CALLS).
CANDIDATES = [
    ("eembc", "rgbcmy"),
    ("eembc", "aifirf"),
    ("specfp2000", "mesa_like"),
    ("specfp2006", "milc_like"),
    ("specfp2006", "povray_like"),
    ("specint2000", "eon_like"),
    ("specint2000", "gap_like"),
]

STRICT = LPConfig("pdoall", 1, 2, 0)   # fn0: calls serialize
LIBERAL = LPConfig("pdoall", 1, 2, 2)  # fn2: calls allowed


def test_inlining_dissolves_part_of_fn_gap(benchmark, runner, artifact_dir):
    def sweep():
        rows = []
        for suite, name in CANDIDATES:
            program = [p for p in suite_programs(suite) if p.name == name][0]
            plain = runner.instance(program)
            inlined = Loopapalooza(
                program.source, f"{program.full_name}+inline",
                fuel=50_000_000, inline=True,
            )
            rows.append((
                program.full_name,
                plain.evaluate(STRICT).speedup,
                inlined.evaluate(STRICT).speedup,
                plain.evaluate(LIBERAL).speedup,
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation — inlining vs the fn axis (pdoall reduc1-dep2)",
        f"{'benchmark':28s}{'fn0':>9s}{'fn0+inline':>12s}{'fn2':>9s}",
    ]
    for name, strict, strict_inlined, liberal in rows:
        lines.append(
            f"{name:28s}{strict:>8.2f}x{strict_inlined:>11.2f}x"
            f"{liberal:>8.2f}x"
        )
    fn0 = geomean(r[1] for r in rows)
    fn0_inline = geomean(r[2] for r in rows)
    fn2 = geomean(r[3] for r in rows)
    lines.append(
        f"{'GEOMEAN':28s}{fn0:>8.2f}x{fn0_inline:>11.2f}x{fn2:>8.2f}x"
    )
    publish(artifact_dir, "ablation_inline.txt", "\n".join(lines))

    # Inlining must recover a real part of the fn gap on these benchmarks...
    assert fn0_inline > fn0 * 1.3
    # ...approaching what fn2 achieves without inlining (the helpers here
    # are small; real codes' un-inlinable calls are why fn2 matters).
    assert fn0_inline > fn2 * 0.5
