# Convenience targets for the Loopapalooza reproduction.

PYTHONPATH := src
export PYTHONPATH

.PHONY: install test lint-ir crosscheck advise-report transform-report fuzz-smoke fuzz-report bench bench-interp sweep-smoke sweep-fault-smoke parexec-smoke parexec-fault-smoke figures examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

lint-ir:
	python -m repro lint --bench all

crosscheck:
	python tools/crosscheck_report.py

# Advisor soundness gate: every advised @parallel/@reduce loop across the
# bench suites must profile conflict-free (exits non-zero otherwise).
advise-report:
	python -m repro advise --suite --crosscheck --loops

transform-report:
	python tools/transform_report.py

# Fixed-seed differential fuzzing campaign (~60s): exits non-zero if any
# generated program trips an oracle and gets quarantined.
fuzz-smoke:
	python -m repro fuzz --seed 0 --count 60 --profile mixed \
		--time-budget 55

fuzz-report:
	python tools/fuzz_report.py

bench:
	pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_infrastructure.json

bench-interp:
	python tools/bench_interp.py

sweep-smoke:
	python -c "\
	from repro.bench.suites import SuiteRunner, suite_programs; \
	runner = SuiteRunner(); \
	grid = runner.evaluate_many( \
	    suite_programs('eembc')[:2], \
	    ('doall:reduc1-dep0-fn0', 'helix:reduc1-dep3-fn3'), \
	    jobs=2); \
	[print(f'{name:40s} {cfg:24s} {r.speedup:8.3f}x') \
	 for name, row in grid.items() for cfg, r in row.items()]; \
	print(runner.store.stats.describe())"

sweep-fault-smoke:
	python tools/sweep_fault_smoke.py

# Parallel-tier soundness gate: every eembc program re-run on the worker
# pool at 1 and 2 workers must serialize a byte-identical profile.
parexec-smoke:
	python -m repro parexec --suite --suite-name eembc --workers 1,2

# Kill a pool worker mid-DOALL-chunk (must retry) and mid-TLS-chunk with
# retries disabled (must abort cleanly and recompute serially).
parexec-fault-smoke:
	python tools/parexec_fault_smoke.py

figures:
	python examples/full_paper_run.py

examples:
	python examples/quickstart.py
	python examples/dependence_census.py
	python examples/loop_diagnosis.py
	python examples/call_continuation_tls.py

clean:
	rm -rf build *.egg-info .pytest_cache benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
