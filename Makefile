# Convenience targets for the Loopapalooza reproduction.

.PHONY: install test bench figures examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

figures:
	python examples/full_paper_run.py

examples:
	python examples/quickstart.py
	python examples/dependence_census.py
	python examples/loop_diagnosis.py
	python examples/call_continuation_tls.py

clean:
	rm -rf build *.egg-info .pytest_cache benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
